// Package dist implements the distributed-memory evaluation of a
// GOFMM-compressed operator — the paper's second stated future-work item
// (§5: "Our future work will focus on the distributed algorithms ...").
//
// Since this reproduction runs on one node, distribution is *simulated*:
// P virtual ranks execute a deterministic bulk-synchronous program in which
// every access to remote data travels through an explicit message router
// that counts messages and bytes. The algorithm is the standard
// distributed-tree formulation (also used by the authors' follow-up
// distributed GOFMM): with P = 2^L ranks, each rank owns the subtree rooted
// at its level-L node; the top L levels are processed cooperatively with
// skeleton-weight messages flowing to the lower-rank owner on the way up
// and skeleton-potential slices flowing back down; far interactions and
// near (L2L) halos that cross rank boundaries are exchanged explicitly.
//
// The communication structure this exposes is the point: in HSS mode the
// message volume is O(P·s·r) — independent of N — while the near-field
// halo grows only with the number of boundary-crossing near pairs. The
// tests assert both properties.
package dist

import (
	"context"
	"fmt"
	"time"

	"gofmm/internal/core"
	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/telemetry"
	"gofmm/internal/workspace"
)

// CommStats aggregates the simulated network traffic of one operation.
type CommStats struct {
	Messages int
	Bytes    int64
	// ByPhase breaks the volume down: "up" (distributed N2S), "far" (S2S
	// skeleton weights), "halo" (L2L near-field blocks), "down"
	// (distributed S2N).
	ByPhase map[string]int64
	// Drops counts deliveries that failed (dropped outright or rejected by
	// the receiver's checksum) and had to be retransmitted — nonzero only
	// under fault injection.
	Drops int
	// Retries counts retransmission attempts; RedeliveredBytes is the extra
	// traffic those retransmissions cost.
	Retries          int
	RedeliveredBytes int64
}

// Machine is a set of virtual ranks sharing a compressed operator.
type Machine struct {
	H     *core.Hierarchical
	P     int // number of ranks (power of two)
	L     int // distributed levels: ranks own subtrees at level L
	Stats CommStats
	// Telemetry records per-phase spans and per-rank traffic counters for
	// each Matvec. Inherited from the operator's Config.Telemetry by
	// Distribute; nil disables all recording.
	Telemetry *telemetry.Recorder
	// Chaos injects message drops/corruption/delays into the router.
	// Inherited from the operator's Config.Chaos by Distribute; nil disables
	// injection.
	Chaos *resilience.Chaos
	// Backoff is the retransmission policy for lost messages (zero value =
	// defaults: 50µs base, 5ms cap, 8 retries).
	Backoff resilience.Backoff
	// PhaseTimeout bounds each Matvec phase (up/far/down/halo); 0 disables.
	PhaseTimeout time.Duration

	leavesPerRank int
	// proj/skel are snapshots of the per-node model data (replicated,
	// static — real deployments ship these once during setup).
	proj []*linalg.Matrix
	skel [][]int
}

// Distribute prepares a P-rank machine for the compressed operator. P must
// be a power of two and at most the number of leaves.
func Distribute(h *core.Hierarchical, ranks int) (*Machine, error) {
	return DistributeCtx(context.Background(), h, ranks)
}

// DistributeCtx is Distribute with cancellation.
func DistributeCtx(ctx context.Context, h *core.Hierarchical, ranks int) (*Machine, error) {
	if err := resilience.FromContext(ctx); err != nil {
		return nil, err
	}
	if ranks < 1 || ranks&(ranks-1) != 0 {
		return nil, fmt.Errorf("%w: dist: ranks must be a power of two, got %d",
			resilience.ErrInvalidInput, ranks)
	}
	numLeaves := h.Tree.NumLeaves()
	if ranks > numLeaves {
		return nil, fmt.Errorf("%w: dist: %d ranks exceed %d leaves",
			resilience.ErrInvalidInput, ranks, numLeaves)
	}
	L := 0
	for 1<<L < ranks {
		L++
	}
	m := &Machine{H: h, P: ranks, L: L, leavesPerRank: numLeaves / ranks,
		Telemetry: h.Cfg.Telemetry, Chaos: h.Cfg.Chaos}
	t := h.Tree
	m.proj = make([]*linalg.Matrix, len(t.Nodes))
	m.skel = make([][]int, len(t.Nodes))
	for id := range t.Nodes {
		m.proj[id] = h.Proj(id)
		m.skel[id] = h.Skeleton(id)
	}
	return m, nil
}

// ownerOf returns the rank owning node id: the rank of its leftmost leaf.
func (m *Machine) ownerOf(id int) int {
	t := m.H.Tree
	nd := &t.Nodes[id]
	firstLeafOrdinal := int(nd.Morton.Path()) << uint(t.Depth-nd.Level)
	return firstLeafOrdinal / m.leavesPerRank
}

// router records simulated messages. Payload transfer is modelled by the
// byte count; the data itself is handed over directly (we are simulating).
// Under fault injection a delivery can be dropped or arrive corrupted (the
// receiver's checksum catches it); either way the router retransmits with
// bounded exponential backoff and gives up with ErrMessageLost only when the
// retry budget is exhausted.
type router struct {
	stats *CommStats
	rec   *telemetry.Recorder
	chaos *resilience.Chaos
	bo    resilience.Backoff
	ctx   context.Context
}

func (r *router) send(phase string, src, dst int, floats int) error {
	if src == dst {
		return nil
	}
	b := int64(floats) * 8
	site := fmt.Sprintf("%s.%d->%d", phase, src, dst)
	drops := 0
	attempts, err := resilience.Retry(r.ctx, r.bo, site, func(int) error {
		if r.chaos.MsgDrop(site) {
			drops++
			return fmt.Errorf("%w: %s dropped in flight", resilience.ErrMessageLost, site)
		}
		if r.chaos.MsgCorrupt(site) {
			drops++
			return fmt.Errorf("%w: %s failed receiver checksum", resilience.ErrMessageLost, site)
		}
		if d := r.chaos.MsgDelay(site); d > 0 {
			time.Sleep(d)
		}
		return nil
	})
	retries := attempts - 1
	r.stats.Drops += drops
	r.stats.Retries += retries
	r.stats.RedeliveredBytes += int64(retries) * b
	if r.rec != nil && retries > 0 {
		r.rec.Counter("dist.msg.retries").Add(int64(retries))
		r.rec.Counter("dist.redelivered_bytes").Add(int64(retries) * b)
	}
	if err != nil {
		return err
	}
	r.stats.Messages++
	r.stats.Bytes += b
	if r.stats.ByPhase == nil {
		r.stats.ByPhase = map[string]int64{}
	}
	r.stats.ByPhase[phase] += b
	if r.rec != nil {
		r.rec.Counter("dist.messages").Add(1)
		r.rec.Counter("dist.bytes." + phase).Add(b)
		r.rec.Counter(fmt.Sprintf("dist.rank.%02d.sent_bytes", src)).Add(b)
	}
	return nil
}

// Matvec evaluates U ≈ K·W with the distributed algorithm and returns the
// gathered result. Stats is reset per call.
func (m *Machine) Matvec(W *linalg.Matrix) (*linalg.Matrix, error) {
	return m.MatvecCtx(context.Background(), W)
}

// phaseCtx derives the per-phase context: the parent bounded by PhaseTimeout
// when one is configured.
func (m *Machine) phaseCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if m.PhaseTimeout > 0 {
		return context.WithTimeout(ctx, m.PhaseTimeout)
	}
	return ctx, func() {}
}

// MatvecCtx is Matvec with cancellation: the context is checked at every
// tree node, each phase is additionally bounded by PhaseTimeout when set,
// and message loss injected by the chaos harness is retransmitted with
// bounded backoff (surfacing as ErrMessageLost only on budget exhaustion).
// Invalid weight dimensions return ErrInvalidInput; no input panics.
func (m *Machine) MatvecCtx(ctx context.Context, W *linalg.Matrix) (*linalg.Matrix, error) {
	h := m.H
	t := h.Tree
	n := h.K.Dim()
	if W == nil {
		return nil, fmt.Errorf("%w: dist: Matvec weights are nil", resilience.ErrInvalidInput)
	}
	if W.Rows != n {
		return nil, fmt.Errorf("%w: dist: Matvec weights have %d rows, operator dimension is %d",
			resilience.ErrInvalidInput, W.Rows, n)
	}
	r := W.Cols
	m.Stats = CommStats{}
	net := &router{stats: &m.Stats, rec: m.Telemetry, chaos: m.Chaos,
		bo: m.Backoff, ctx: ctx}
	root := m.Telemetry.StartSpan("dist.matvec")
	defer root.End()
	root.SetTraceIDFromContext(ctx)

	// Input/output in tree order; each rank owns a contiguous slice of
	// positions (the scatter/gather are part of the data distribution, not
	// counted as algorithm communication). Every per-call intermediate is
	// drawn from the operator's workspace pool when one is configured; the
	// returned matrix is always freshly allocated.
	sc := h.Cfg.Workspace.NewScope()
	defer sc.Release()
	Wt := sc.Matrix(n, r)
	W.RowsGatherInto(t.Perm, Wt)
	Unear := sc.Matrix(n, r)
	Ufar := sc.Matrix(n, r)
	skelW := make([]*linalg.Matrix, len(t.Nodes))
	skelU := make([]*linalg.Matrix, len(t.Nodes))
	down := make([]*linalg.Matrix, len(t.Nodes))

	// Phase 1+2 — upward N2S. Postorder guarantees children first; when the
	// right child lives on another rank, its skeleton weights are messaged
	// to the node owner ("up").
	upCtx, upCancel := m.phaseCtx(ctx)
	net.ctx = upCtx
	var upward func(id int) error
	upward = func(id int) error {
		if err := resilience.FromContext(upCtx); err != nil {
			return err
		}
		if !t.IsLeaf(id) {
			if err := upward(t.Left(id)); err != nil {
				return err
			}
			if err := upward(t.Right(id)); err != nil {
				return err
			}
		}
		proj := m.proj[id]
		if proj == nil {
			return nil
		}
		out := sc.Matrix(proj.Rows, r)
		if t.IsLeaf(id) {
			nd := &t.Nodes[id]
			linalg.Gemm(false, false, 1, proj, Wt.View(nd.Lo, 0, nd.Size(), r), 0, out)
		} else {
			l, rr := t.Left(id), t.Right(id)
			if m.ownerOf(rr) != m.ownerOf(id) && skelW[rr] != nil {
				if err := net.send("up", m.ownerOf(rr), m.ownerOf(id), skelW[rr].Rows*r); err != nil {
					return err
				}
			}
			stacked := stack(sc, skelW[l], skelW[rr], r)
			linalg.Gemm(false, false, 1, proj, stacked, 0, out)
		}
		skelW[id] = out
		return nil
	}
	sp := root.StartSpan("up")
	err := upward(0)
	sp.End()
	upCancel()
	if err != nil {
		return nil, err
	}

	// Phase 3 — S2S. Remote far-node skeleton weights are imported ("far");
	// the blocks K_β̃α̃ are owned by β's rank (cached there at setup).
	farCtx, farCancel := m.phaseCtx(ctx)
	net.ctx = farCtx
	sp = root.StartSpan("far")
	for id := range t.Nodes {
		far := h.FarList(id)
		if len(far) == 0 || len(m.skel[id]) == 0 {
			continue
		}
		if err = resilience.FromContext(farCtx); err != nil {
			break
		}
		acc := sc.Matrix(len(m.skel[id]), r)
		for _, alpha := range far {
			wa := skelW[alpha]
			if wa == nil || wa.Rows == 0 {
				continue
			}
			if m.ownerOf(alpha) != m.ownerOf(id) {
				if err = net.send("far", m.ownerOf(alpha), m.ownerOf(id), wa.Rows*r); err != nil {
					break
				}
			}
			block := core.NewGathered(h.K, m.skel[id], m.skel[alpha])
			linalg.Gemm(false, false, 1, block, wa, 1, acc)
		}
		if err != nil {
			break
		}
		skelU[id] = acc
	}
	sp.End()
	farCancel()
	if err != nil {
		return nil, err
	}

	// Phase 4+5 — downward S2N. Parent owners push the child slice of
	// Pᵀũ to remote child owners ("down").
	downCtx, downCancel := m.phaseCtx(ctx)
	net.ctx = downCtx
	var downward func(id int) error
	downward = func(id int) error {
		if err := resilience.FromContext(downCtx); err != nil {
			return err
		}
		if p := t.Parent(id); p >= 0 && down[p] != nil {
			ls := len(m.skel[t.Left(p)])
			var part *linalg.Matrix
			if id == t.Left(p) {
				part = down[p].View(0, 0, ls, r)
			} else {
				part = down[p].View(ls, 0, down[p].Rows-ls, r)
				if m.ownerOf(id) != m.ownerOf(p) && part.Rows > 0 {
					if err := net.send("down", m.ownerOf(p), m.ownerOf(id), part.Rows*r); err != nil {
						return err
					}
				}
			}
			if part.Rows > 0 {
				if skelU[id] == nil {
					skelU[id] = sc.Matrix(part.Rows, r)
				}
				skelU[id].AddScaled(1, part)
			}
		}
		u := skelU[id]
		proj := m.proj[id]
		if u != nil && u.Rows > 0 && proj != nil {
			if t.IsLeaf(id) {
				nd := &t.Nodes[id]
				linalg.Gemm(true, false, 1, proj, u, 1, Ufar.View(nd.Lo, 0, nd.Size(), r))
			} else {
				d := sc.Matrix(proj.Cols, r)
				linalg.Gemm(true, false, 1, proj, u, 0, d)
				down[id] = d
			}
		}
		if !t.IsLeaf(id) {
			if err := downward(t.Left(id)); err != nil {
				return err
			}
			if err := downward(t.Right(id)); err != nil {
				return err
			}
		}
		return nil
	}
	sp = root.StartSpan("down")
	err = downward(0)
	sp.End()
	downCancel()
	if err != nil {
		return nil, err
	}

	// Phase 6 — L2L with near-field halo: remote near leaves ship their
	// W rows ("halo").
	haloCtx, haloCancel := m.phaseCtx(ctx)
	net.ctx = haloCtx
	sp = root.StartSpan("halo")
	for _, beta := range t.Leaves() {
		if err = resilience.FromContext(haloCtx); err != nil {
			break
		}
		tb := &t.Nodes[beta]
		uview := Unear.View(tb.Lo, 0, tb.Size(), r)
		for _, alpha := range h.NearList(beta) {
			ta := &t.Nodes[alpha]
			if m.ownerOf(alpha) != m.ownerOf(beta) {
				if err = net.send("halo", m.ownerOf(alpha), m.ownerOf(beta), ta.Size()*r); err != nil {
					break
				}
			}
			block := core.NewGathered(h.K, t.Indices(beta), t.Indices(alpha))
			linalg.Gemm(false, false, 1, block, Wt.View(ta.Lo, 0, ta.Size(), r), 1, uview)
		}
		if err != nil {
			break
		}
	}
	sp.End()
	haloCancel()
	if err != nil {
		return nil, err
	}

	Ufar.AddScaled(1, Unear)
	return Ufar.RowsGather(t.IPerm), nil
}

// stack returns [a; b] in scope-owned storage, treating nil as empty.
func stack(sc *workspace.Scope, a, b *linalg.Matrix, cols int) *linalg.Matrix {
	ra, rb := 0, 0
	if a != nil {
		ra = a.Rows
	}
	if b != nil {
		rb = b.Rows
	}
	out := sc.Matrix(ra+rb, cols)
	if ra > 0 {
		out.View(0, 0, ra, cols).CopyFrom(a)
	}
	if rb > 0 {
		out.View(ra, 0, rb, cols).CopyFrom(b)
	}
	return out
}
