package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Full jitter must draw uniformly from [0, delay): every value stays below
// the undithered exponential delay, the draws are deterministic in
// (seed, site, attempt), and different sites decorrelate.
func TestBackoffFullJitterDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 100 * time.Millisecond,
		Factor: 2, MaxRetries: 8, JitterSeed: 42, FullJitter: true}
	plain := Backoff{Base: b.Base, Max: b.Max, Factor: b.Factor, MaxRetries: b.MaxRetries}
	for attempt := 0; attempt < 8; attempt++ {
		d := b.Delay("site-a", attempt)
		// Ceiling: the undithered exponential delay for this attempt.
		ceil := time.Duration(float64(time.Millisecond) * pow2min(attempt, 100))
		if d < 0 || d >= ceil {
			t.Fatalf("attempt %d: full-jitter delay %v outside [0, %v)", attempt, d, ceil)
		}
		if again := b.Delay("site-a", attempt); again != d {
			t.Fatalf("attempt %d: nondeterministic full jitter: %v vs %v", attempt, d, again)
		}
		_ = plain
	}
	// Different sites should not all land on the same fraction.
	distinct := map[time.Duration]bool{}
	for _, site := range []string{"a", "b", "c", "d", "e", "f"} {
		distinct[b.Delay(site, 3)] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("full jitter degenerate: all sites drew the same delay")
	}
}

func pow2min(attempt int, maxMs int) float64 {
	d := 1.0
	for i := 0; i < attempt && d < float64(maxMs); i++ {
		d *= 2
	}
	if d > float64(maxMs) {
		d = float64(maxMs)
	}
	return d
}

func TestWithRetryAfterRoundTrip(t *testing.T) {
	base := errors.New("boom")
	err := WithRetryAfter(base, 30*time.Millisecond)
	if !errors.Is(err, base) {
		t.Fatalf("WithRetryAfter broke errors.Is chain")
	}
	hint, ok := RetryAfterHint(err)
	if !ok || hint != 30*time.Millisecond {
		t.Fatalf("RetryAfterHint = %v, %v; want 30ms, true", hint, ok)
	}
	// Hints survive further wrapping.
	wrapped := WithRetryAfter(base, 10*time.Millisecond)
	outer := errors.Join(errors.New("context"), wrapped)
	if hint, ok := RetryAfterHint(outer); !ok || hint != 10*time.Millisecond {
		t.Fatalf("hint lost through wrapping: %v, %v", hint, ok)
	}
	if WithRetryAfter(nil, time.Second) != nil {
		t.Fatalf("WithRetryAfter(nil) must stay nil")
	}
	if got := WithRetryAfter(base, 0); got != base {
		t.Fatalf("non-positive hint must return err unchanged")
	}
	if _, ok := RetryAfterHint(base); ok {
		t.Fatalf("hint reported on unhinted error")
	}
}

// A Retry-After hint longer than the backoff's own schedule must stretch
// the sleep: with a microsecond-scale policy and a 40ms hint, two retries
// cannot complete faster than the hinted waits.
func TestRetryHonoursRetryAfterHint(t *testing.T) {
	b := Backoff{Base: time.Microsecond, Max: 2 * time.Microsecond, MaxRetries: 2, JitterSeed: 7}
	hinted := WithRetryAfter(errors.New("overloaded"), 40*time.Millisecond)
	start := time.Now()
	calls := 0
	attempts, err := Retry(context.Background(), b, "hinted", func(int) error {
		calls++
		if calls < 3 {
			return hinted
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("Retry = %d, %v; want 3 attempts, nil", attempts, err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("Retry ignored the Retry-After hints: elapsed %v < 80ms", elapsed)
	}
}

// Hints shorter than the backoff schedule must not shorten it: the policy
// delay is the floor for herd decorrelation.
func TestRetryHintIsOnlyAFloor(t *testing.T) {
	b := Backoff{Base: 30 * time.Millisecond, Max: 30 * time.Millisecond, MaxRetries: 1, JitterSeed: 7}
	hinted := WithRetryAfter(errors.New("overloaded"), time.Microsecond)
	start := time.Now()
	_, err := Retry(context.Background(), b, "floor", func(int) error { return hinted })
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("want ErrTaskFailed, got %v", err)
	}
	// One inter-attempt sleep at ≥ 0.75·30ms jittered.
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("short hint shortened the policy delay: elapsed %v", elapsed)
	}
}
