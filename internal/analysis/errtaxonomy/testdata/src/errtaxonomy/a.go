// Package errtaxonomy is the golden fixture for the errtaxonomy analyzer.
package errtaxonomy

import (
	"errors"
	"fmt"
)

// ErrSentinel is a package-level sentinel: the taxonomy itself, never
// flagged (only returns are checked).
var ErrSentinel = errors.New("errtaxonomy: sentinel")

// Exported returning a bare errors.New: flagged.
func Open(name string) error {
	if name == "" {
		return errors.New("empty name") // want `errors\.New returned from exported Open crosses the internal/ boundary untyped`
	}
	return nil
}

// Exported returning fmt.Errorf with no %w: flagged.
func Parse(n int) error {
	if n < 0 {
		return fmt.Errorf("negative count %d", n) // want `fmt\.Errorf returned from exported Parse crosses the internal/ boundary untyped`
	}
	return nil
}

// The untyped error can hide behind a single-assignment local: flagged at
// the construction site.
func Indirect() error {
	err := errors.New("indirect") // want `errors\.New returned from exported Indirect`
	return err
}

// Wrapping a sentinel with %w is the taxonomy-correct form: clean.
func Wrapped(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: negative count %d", ErrSentinel, n)
	}
	return nil
}

// Unexported helpers wrap at the boundary, not here: clean.
func helper() error {
	return errors.New("internal detail")
}

// Reassigned locals are not tracked (the second assignment may wrap): clean.
func Reassigned() error {
	err := errors.New("first")
	err = fmt.Errorf("%w: wrapped", err)
	return err
}

// Propagating a callee's error verbatim: clean.
func Propagate() error {
	if err := helper(); err != nil {
		return err
	}
	return nil
}

// Returns inside closures do not cross the public boundary: clean.
func WithClosure() error {
	f := func() error { return errors.New("inside closure") }
	return nilOr(f())
}

func nilOr(err error) error { return nil }
