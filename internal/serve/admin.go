package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"path/filepath"
	"strings"

	"gofmm/internal/core"
	"gofmm/internal/resilience"
	"gofmm/internal/workspace"
)

// AdminConfig enables the store-backed operator administration endpoints:
//
//	POST   /admin/operators/{name}   load (or hot-swap) {name} from <StoreDir>/{name}.store
//	DELETE /admin/operators/{name}   deregister {name}
//
// Loads go through core.LoadFrom (mmap when Mmap is set, with transparent
// fallback) and install via Registry.SwapHierarchical, so a reload replaces
// a serving operator without failing a single in-flight request. Loading is
// restricted to StoreDir by construction: the operator name is validated as
// a bare file stem, never a path.
type AdminConfig struct {
	// StoreDir is the only directory operators may be loaded from (required).
	StoreDir string
	// Mmap requests zero-copy mapped loads (portable fallback on failure).
	Mmap bool
	// EvalCtx scopes the lifetime of swapped-in batch evaluators. It must
	// outlive individual requests — typically the daemon's evaluator
	// context, cancelled only at process exit (required).
	EvalCtx context.Context
	// Batch configures each swapped-in operator's BatchEvaluator.
	Batch core.BatchOptions
	// Limits is the protection stack for swapped-in operators.
	Limits Limits
	// NumWorkers and Workspace seed the loaded operator's evaluation config.
	NumWorkers int
	Workspace  *workspace.Pool
}

// validOperatorName accepts bare file stems only — no separators, no dot
// prefixes — so the admin API cannot be steered outside StoreDir.
func validOperatorName(name string) bool {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return !strings.Contains(name, "..")
}

// handleAdminLoad serves POST /admin/operators/{name}: load the operator's
// store file and hot-swap it into service.
func (s *Server) handleAdminLoad(w http.ResponseWriter, r *http.Request) {
	end, err := s.begin()
	if err != nil {
		s.writeError(w, r, err, "")
		return
	}
	defer end()
	name := r.PathValue("name")
	if !validOperatorName(name) {
		s.writeError(w, r, fmt.Errorf("%w: operator name %q is not a bare file stem",
			resilience.ErrInvalidInput, name), "")
		return
	}
	a := s.cfg.Admin
	path := filepath.Join(a.StoreDir, name+".store")
	h, info, err := core.LoadFrom(path, core.LoadOptions{
		Mmap:       a.Mmap,
		NumWorkers: a.NumWorkers,
		Workspace:  a.Workspace,
		Telemetry:  s.rec,
	})
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			err = fmt.Errorf("%w: no store file for %q", ErrUnknownOperator, name)
		}
		s.writeError(w, r, err, "")
		return
	}
	op, err := s.reg.SwapHierarchical(a.EvalCtx, name, h, a.Batch, a.Limits)
	if err != nil {
		if rerr := h.ReleaseStore(); rerr != nil {
			s.logWriteErr(rerr)
		}
		s.writeError(w, r, err, "")
		return
	}
	if l := s.rec.Logger(); l != nil {
		l.Info("serve: operator loaded from store",
			"operator", name, "bytes", info.Bytes, "mapped", info.Mapped,
			"plan", info.HasPlan)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	resp := map[string]any{
		"operator":    name,
		"dim":         op.Dim(),
		"bytes":       info.Bytes,
		"mapped":      info.Mapped,
		"plan":        info.HasPlan,
		"plan_digest": info.PlanDigest,
		"solve":       op.CanSolve(),
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.logWriteErr(err)
	}
}

// handleAdminDelete serves DELETE /admin/operators/{name}: remove the
// operator from service (in-flight evaluations finish first).
func (s *Server) handleAdminDelete(w http.ResponseWriter, r *http.Request) {
	end, err := s.begin()
	if err != nil {
		s.writeError(w, r, err, "")
		return
	}
	defer end()
	name := r.PathValue("name")
	if !validOperatorName(name) {
		s.writeError(w, r, fmt.Errorf("%w: operator name %q is not a bare file stem",
			resilience.ErrInvalidInput, name), "")
		return
	}
	if err := s.reg.Deregister(name); err != nil {
		s.writeError(w, r, err, "")
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := json.NewEncoder(w).Encode(map[string]string{"deregistered": name}); err != nil {
		s.logWriteErr(err)
	}
}
