package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
)

// skelWork holds the transient state passed from a SKEL task to its COEF
// task: the pivoted QR factor of the sampled off-diagonal block.
type skelWork struct {
	cols []int // candidate column indices (leaf indices or [l̃ r̃])
	fact *linalg.QRCP
}

// candidateCols returns the candidate columns for node id: the owned indices
// for a leaf, or the concatenated children skeletons for an interior node
// (the nesting α̃ ⊂ l̃ ∪ r̃ of Algorithm 2.6).
func (h *Hierarchical) candidateCols(id int) []int {
	t := h.Tree
	if t.IsLeaf(id) {
		idx := t.Indices(id)
		cols := make([]int, len(idx))
		copy(cols, idx)
		return cols
	}
	l, r := h.nodes[t.Left(id)].skel, h.nodes[t.Right(id)].skel
	cols := make([]int, 0, len(l)+len(r))
	cols = append(cols, l...)
	cols = append(cols, r...)
	return cols
}

// sampleRows performs neighbor-based importance sampling of rows I′ ⊂ I for
// node id, where I is the complement of the node's index set: neighbors of
// the candidate columns that lie outside the subtree come first, then
// uniform fill from the complement. This is the sampling of [32] that makes
// the O(N log N) compression possible — and the quality gap between it and
// uniform sampling is exactly what Figure 7's lexicographic column shows.
func (h *Hierarchical) sampleRows(id int, cols []int, rng *rand.Rand) []int {
	t := h.Tree
	nd := &t.Nodes[id]
	n := h.K.Dim()
	inside := func(j int) bool {
		pos := t.IPerm[j]
		return pos >= nd.Lo && pos < nd.Hi
	}
	budget := min(h.Cfg.SampleRows, n-nd.Size())
	if budget <= 0 {
		return nil
	}
	taken := make(map[int]bool, budget)
	rows := make([]int, 0, budget)
	if h.Neighbors != nil {
		for _, c := range cols {
			if len(rows) >= budget {
				break
			}
			for _, jj := range h.Neighbors.Of(c) {
				j := int(jj)
				if inside(j) || taken[j] {
					continue
				}
				taken[j] = true
				rows = append(rows, j)
				if len(rows) >= budget {
					break
				}
			}
		}
	}
	// Uniform fill from the complement. When the complement is small,
	// enumerate it; otherwise rejection-sample.
	if n-nd.Size() <= 2*budget {
		comp := make([]int, 0, n-nd.Size())
		for j := 0; j < n; j++ {
			if !inside(j) && !taken[j] {
				comp = append(comp, j)
			}
		}
		rng.Shuffle(len(comp), func(a, b int) { comp[a], comp[b] = comp[b], comp[a] })
		for _, j := range comp {
			if len(rows) >= budget {
				break
			}
			rows = append(rows, j)
		}
	} else {
		for len(rows) < budget {
			j := rng.Intn(n)
			if inside(j) || taken[j] {
				continue
			}
			taken[j] = true
			rows = append(rows, j)
		}
	}
	sort.Ints(rows)
	return rows
}

// skelNode runs the SKEL(α) task: sample rows, gather K_{I′,cols}, and run
// the rank-revealing pivoted QR that selects the skeleton α̃ (critical-path
// work, 2s³ + 2m³ in Table 2). The triangular solve that produces the
// interpolation matrix is deferred to coefNode (COEF, any order).
func (h *Hierarchical) skelNode(id int, rng *rand.Rand) *skelWork {
	if h.Cfg.Telemetry != nil {
		defer h.recordSkelNode(id, time.Now())
	}
	cols := h.candidateCols(id)
	w := &skelWork{cols: cols}
	if len(cols) == 0 {
		h.nodes[id].skel = nil
		return w
	}
	rows := h.sampleRows(id, cols, rng)
	if len(rows) == 0 {
		// No complement (root-like): keep everything, identity coefficients.
		h.nodes[id].skel = cols
		return w
	}
	sub := NewGathered(h.K, rows, cols)
	maxRank := min(h.Cfg.MaxRank, min(len(rows), len(cols)))
	w.fact = linalg.QRColumnPivot(sub, h.Cfg.Tol, maxRank)
	// Tolerance miss at MaxRank: the trailing-block estimate of σ_{s+1} is
	// still above Tol·σ₁, so the interpolative decomposition would silently
	// exceed the requested accuracy. Config.Degrade decides: accept the
	// truncation (default), degrade this node to exact identity-interpolation
	// storage, or fail the compression.
	if h.Cfg.Degrade != DegradeTruncate &&
		w.fact.Rank >= maxRank && w.fact.Rank < len(cols) && h.Cfg.Tol > 0 &&
		w.fact.Sigma1 > 0 && w.fact.ResidNorm > h.Cfg.Tol*w.fact.Sigma1 {
		if h.Cfg.Degrade == DegradeStrict {
			h.recordToleranceMiss(fmt.Errorf(
				"%w: node %d: rank %d residual %.3g exceeds %.3g·σ₁ (σ₁=%.3g)",
				resilience.ErrTolerance, id, w.fact.Rank, w.fact.ResidNorm,
				h.Cfg.Tol, w.fact.Sigma1))
		}
		h.nodes[id].skel = cols
		h.nodes[id].denseFallback = true
		w.fact = nil
		if rec := h.Cfg.Telemetry; rec != nil {
			rec.Counter("compress.dense_fallback").Add(1)
		}
		return w
	}
	s := w.fact.Rank
	skel := make([]int, s)
	for k := 0; k < s; k++ {
		skel[k] = cols[w.fact.Piv[k]]
	}
	h.nodes[id].skel = skel
	h.addCompressFlops(4 * float64(len(rows)) * float64(len(cols)) * float64(max(s, 1)))
	return w
}

// coefNode runs COEF(α): form P from the stored QR factor via a triangular
// solve (s³ in Table 2).
func (h *Hierarchical) coefNode(id int, w *skelWork) {
	if w.fact == nil {
		// Identity interpolation (root or degenerate node).
		if h.nodes[id].skel != nil {
			h.nodes[id].proj = linalg.Eye(len(h.nodes[id].skel))
		}
		return
	}
	s := w.fact.Rank
	n := len(w.cols)
	coef := linalg.NewMatrix(s, n)
	for k := 0; k < s; k++ {
		coef.Set(k, w.fact.Piv[k], 1)
	}
	if n > s {
		T := linalg.NewMatrix(s, n-s)
		for j := 0; j < n-s; j++ {
			copy(T.Col(j), w.fact.QR.Col(s + j)[:s])
		}
		linalg.TrsmLeftUpper(false, w.fact.QR, T)
		for j := 0; j < n-s; j++ {
			copy(coef.Col(w.fact.Piv[s+j]), T.Col(j))
		}
		h.addCompressFlops(float64(s) * float64(s) * float64(n-s))
	}
	h.nodes[id].proj = coef
	w.fact = nil // release the factor
}

// cacheBlocks evaluates and stores the near blocks K_βα (task Kba) and far
// skeleton blocks K_β̃α̃ (task SKba). With caching, evaluation is pure GEMM.
func (h *Hierarchical) cacheNearBlock(beta int) {
	t := h.Tree
	nd := &h.nodes[beta]
	bi := t.Indices(beta)
	if h.Cfg.CacheSingle {
		nd.cacheNear32 = make([]*linalg.Matrix32, len(nd.near))
		for k, alpha := range nd.near {
			nd.cacheNear32[k] = linalg.ToMatrix32(NewGathered(h.K, bi, t.Indices(alpha)))
		}
		return
	}
	nd.cacheNear = make([]*linalg.Matrix, len(nd.near))
	for k, alpha := range nd.near {
		nd.cacheNear[k] = NewGathered(h.K, bi, t.Indices(alpha))
	}
}

func (h *Hierarchical) cacheFarBlock(beta int) {
	nd := &h.nodes[beta]
	if h.Cfg.CacheSingle {
		nd.cacheFar32 = make([]*linalg.Matrix32, len(nd.far))
		for k, alpha := range nd.far {
			nd.cacheFar32[k] = linalg.ToMatrix32(NewGathered(h.K, nd.skel, h.nodes[alpha].skel))
		}
		return
	}
	nd.cacheFar = make([]*linalg.Matrix, len(nd.far))
	for k, alpha := range nd.far {
		nd.cacheFar[k] = NewGathered(h.K, nd.skel, h.nodes[alpha].skel)
	}
}
