package scopecheck

import "workspace"

// Forgotten gets the mechanical fix: defer sc.Release() after the binding.
func Forgotten(p *workspace.Pool) {
	sc := p.NewScope() // want `scope sc is never released`
	work(sc.Matrix(16, 16))
}
