// Package spancheck verifies that every telemetry span is ended on every
// path. A span whose End never runs keeps its subtree open in the recorder:
// timings attributed to it are garbage and the span tree assertions in the
// telemetry tests only notice if that particular call chain is exercised.
//
// Accepted idioms, taken from the repo itself:
//
//	defer h.Telemetry.StartSpan("evaluate").End()   // chained
//	root := rec.StartSpan("matvec"); defer root.End()
//	sp := root.StartSpan("N2S"); ...; sp.End()      // segmented reuse
//	sp = root.StartSpan("S2S"); ...; sp.End()
//	return rec.StartSpan("x")                        // escapes to caller
//
// Flagged: a StartSpan result that is discarded outright, a binding with no
// End in its live segment (with a `defer v.End()` suggested fix), and a
// plain return sitting between the binding and its first non-deferred End —
// the early-return leak.
package spancheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"gofmm/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "spancheck",
	Doc:  "flag telemetry spans that are not ended on every path",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Syntax {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		parents := framework.BuildParents(file)
		for _, scope := range collectScopes(file) {
			checkScope(pass, parents, scope)
		}
	}
	return nil
}

// collectScopes returns every function body in the file — declarations and
// literals alike. Each is analyzed independently: a `return` inside a
// closure does not exit the enclosing function, and a span bound in the
// closure must be ended there.
func collectScopes(file *ast.File) []*ast.BlockStmt {
	var scopes []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncDecl:
			if nn.Body != nil {
				scopes = append(scopes, nn.Body)
			}
		case *ast.FuncLit:
			scopes = append(scopes, nn.Body)
		}
		return true
	})
	return scopes
}

// inspectOwn walks body but does not descend into nested function literals,
// which are scopes of their own.
func inspectOwn(body *ast.BlockStmt, f func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}

func checkScope(pass *framework.Pass, parents framework.Parents, body *ast.BlockStmt) {
	inspectOwn(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isStartSpan(pass, call) {
			return true
		}
		classify(pass, parents, body, call)
		return true
	})
}

func isStartSpan(pass *framework.Pass, call *ast.CallExpr) bool {
	return framework.IsMethod(pass.TypesInfo, call, "telemetry", "Recorder", "StartSpan") ||
		framework.IsMethod(pass.TypesInfo, call, "telemetry", "Span", "StartSpan")
}

func classify(pass *framework.Pass, parents framework.Parents, body *ast.BlockStmt, call *ast.CallExpr) {
	switch parent := parents[call].(type) {
	case *ast.SelectorExpr:
		// Chained use: StartSpan("x").End() — or any other method hung
		// directly off the result; only End closes the span.
		if outer, ok := parents[parent].(*ast.CallExpr); ok && outer.Fun == parent {
			if parent.Sel.Name == "End" {
				return
			}
			classify(pass, parents, body, outer) // e.g. StartSpan("x").Annotate(...) chains
			return
		}
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(),
			"result of StartSpan is discarded: the span is never ended and stays open in the recorder")
		return
	case *ast.AssignStmt:
		checkBinding(pass, parents, body, call, parent)
		return
	}
	// Anything else — argument, return value, composite literal, channel
	// send — escapes this scope; ownership of End moves with it.
}

func checkBinding(pass *framework.Pass, parents framework.Parents, body *ast.BlockStmt, call *ast.CallExpr, as *ast.AssignStmt) {
	var lhs ast.Expr
	for i, rhs := range as.Rhs {
		if ast.Unparen(rhs) == call && i < len(as.Lhs) {
			lhs = as.Lhs[i]
		}
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return // stored through a selector or index: escapes
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(),
			"result of StartSpan is assigned to _: the span is never ended and stays open in the recorder")
		return
	}
	obj := framework.ObjectOf(pass.TypesInfo, id)
	if obj == nil {
		return
	}

	// The binding is live from this assignment until the variable is next
	// reassigned (segmented reuse: sp = root.StartSpan("S2S")) or the scope
	// ends.
	segEnd := body.End()
	reassigned := false
	ast.Inspect(body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || a == as || a.Pos() <= as.Pos() {
			return true
		}
		for _, l := range a.Lhs {
			if framework.ObjectOf(pass.TypesInfo, l) == obj {
				reassigned = true
				if a.Pos() < segEnd {
					segEnd = a.Pos()
				}
			}
		}
		return true
	})

	// Collect obj.End() calls in the live segment, split by deferredness.
	// Ends inside nested closures count too: handing the span to a literal
	// that ends it is fine.
	var plainEnds, deferredEnds []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() <= as.End() || c.Pos() >= segEnd {
			return true
		}
		sel, ok := c.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" || framework.ObjectOf(pass.TypesInfo, sel.X) != obj {
			return true
		}
		if ds, ok := parents[c].(*ast.DeferStmt); ok && ds.Call == c {
			deferredEnds = append(deferredEnds, c.Pos())
		} else {
			plainEnds = append(plainEnds, c.Pos())
		}
		return true
	})

	if len(plainEnds) == 0 && len(deferredEnds) == 0 {
		d := framework.Diagnostic{
			Pos: as.Pos(),
			Message: fmt.Sprintf(
				"span %s is never ended in its live segment; add %s.End() or defer it",
				id.Name, id.Name),
		}
		if as.Tok == token.DEFINE && !reassigned {
			if fix := deferEndFix(pass, id.Name, as); fix != nil {
				d.SuggestedFixes = []framework.SuggestedFix{*fix}
			}
		}
		pass.Report(d)
		return
	}

	// A deferred End covers every exit; only the plain-End pattern leaks on
	// an early return between the binding and the first End.
	if len(deferredEnds) > 0 {
		return
	}
	firstEnd := plainEnds[0]
	for _, p := range plainEnds[1:] {
		if p < firstEnd {
			firstEnd = p
		}
	}
	inspectOwn(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= as.End() || ret.Pos() >= firstEnd {
			return true
		}
		pass.Reportf(ret.Pos(),
			"return leaks span %s: it was started before this return but %s.End() only runs later; use defer",
			id.Name, id.Name)
		return true
	})
}

// deferEndFix inserts `defer <name>.End()` on the line after the binding,
// reproducing the binding statement's indentation.
func deferEndFix(pass *framework.Pass, name string, as *ast.AssignStmt) *framework.SuggestedFix {
	pos := pass.Fset.Position(as.Pos())
	if pos.Column < 1 {
		return nil
	}
	indent := strings.Repeat("\t", pos.Column-1)
	return &framework.SuggestedFix{
		Message: fmt.Sprintf("defer %s.End() after the binding", name),
		TextEdits: []framework.TextEdit{{
			Pos:     as.End(),
			End:     as.End(),
			NewText: []byte("\n" + indent + "defer " + name + ".End()"),
		}},
	}
}
