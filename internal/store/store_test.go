package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"gofmm/internal/resilience"
)

func sha256sum(b []byte) []byte {
	s := sha256.Sum256(b)
	return s[:]
}

// testSections builds a representative five-section payload set with
// deliberately awkward (non-aligned) lengths.
func testSections() []Section {
	arena64 := make([]byte, 8*129)
	for i := range arena64 {
		arena64[i] = byte(i * 7)
	}
	arena32 := make([]byte, 4*33)
	for i := range arena32 {
		arena32[i] = byte(i * 13)
	}
	return []Section{
		{Kind: SecMeta, Data: []byte("meta-payload")},
		{Kind: SecTopo, Data: bytes.Repeat([]byte{0xAB}, 777)},
		{Kind: SecPlan, Data: []byte{1}},
		{Kind: SecArena64, Data: arena64},
		{Kind: SecArena32, Data: arena32},
	}
}

func writeTemp(t *testing.T, sections []Section) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "op.gofmm")
	if _, err := WriteFile(path, sections); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func checkSections(t *testing.T, f *File, want []Section) {
	t.Helper()
	if got, wantN := len(f.Kinds()), len(want); got != wantN {
		t.Fatalf("got %d sections, want %d", got, wantN)
	}
	for _, s := range want {
		got, ok := f.Section(s.Kind)
		if !ok {
			t.Fatalf("section %s missing", s.Kind)
		}
		if !bytes.Equal(got, s.Data) {
			t.Errorf("section %s payload differs", s.Kind)
		}
	}
	if _, ok := f.Section(SectionKind(99)); ok {
		t.Error("lookup of absent kind succeeded")
	}
}

func TestWriteOpenRoundTrip(t *testing.T) {
	want := testSections()
	path := writeTemp(t, want)
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	if f.Mapped() {
		t.Error("Open must not report a mapping")
	}
	st, _ := os.Stat(path)
	if f.Size() != st.Size() {
		t.Errorf("Size %d, stat %d", f.Size(), st.Size())
	}
	checkSections(t, f, want)
}

func TestOpenMmapRoundTrip(t *testing.T) {
	if runtime.GOOS == "windows" || runtime.GOOS == "plan9" || runtime.GOOS == "js" {
		t.Skip("no mmap on this platform")
	}
	want := testSections()
	path := writeTemp(t, want)
	f, err := OpenMmap(path)
	if err != nil {
		t.Fatalf("OpenMmap: %v", err)
	}
	if !f.Mapped() {
		t.Error("OpenMmap must report a mapping")
	}
	checkSections(t, f, want)
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestSectionAlignment(t *testing.T) {
	path := writeTemp(t, testSections())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.sections {
		if s.off%Align != 0 {
			t.Errorf("section %s at offset %d not %d-byte aligned", s.kind, s.off, Align)
		}
	}
	// Arena payloads must be viewable as floats straight off the buffer.
	a64, _ := f.Section(SecArena64)
	if _, err := Float64s(a64); err != nil {
		t.Errorf("arena64 view: %v", err)
	}
	a32, _ := f.Section(SecArena32)
	if _, err := Float32s(a32); err != nil {
		t.Errorf("arena32 view: %v", err)
	}
}

// corrupt opens the written image, applies f, and decodes.
func decodeCorrupted(t *testing.T, mutate func([]byte) []byte) error {
	t.Helper()
	path := writeTemp(t, testSections())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Decode(mutate(raw))
	return err
}

func TestDecodeRejectsCorruption(t *testing.T) {
	le := binary.LittleEndian
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"short file", func(b []byte) []byte { return b[:headerSize-1] }, ErrBadStore},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrBadStore},
		{"bad version", func(b []byte) []byte { le.PutUint32(b[8:12], 99); return b }, ErrBadStore},
		{"zero sections", func(b []byte) []byte { le.PutUint32(b[12:16], 0); return b }, ErrBadStore},
		{"oversized count", func(b []byte) []byte { le.PutUint32(b[12:16], 1<<30); return b }, ErrBadStore},
		{"size mismatch", func(b []byte) []byte { le.PutUint64(b[16:24], uint64(len(b)+1)); return b }, ErrBadStore},
		{"table off", func(b []byte) []byte { le.PutUint64(b[24:32], 128); return b }, ErrBadStore},
		{"truncated", func(b []byte) []byte {
			le.PutUint64(b[16:24], uint64(len(b)-10))
			return b[:len(b)-10]
		}, ErrChecksum}, // last section range now overruns → caught as table bounds or sum
		{"table bit flip", func(b []byte) []byte { b[headerSize+4] ^= 1; return b }, ErrChecksum},
		{"payload bit flip", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := decodeCorrupted(t, tc.mutate)
			if err == nil {
				t.Fatal("corrupted image decoded cleanly")
			}
			if !errors.Is(err, resilience.ErrInvalidInput) {
				t.Fatalf("error %v is outside the taxonomy", err)
			}
			if tc.want == ErrBadStore && !errors.Is(err, ErrBadStore) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("got %v, want ErrBadStore/ErrChecksum", err)
			}
		})
	}
}

func TestDecodeRejectsStructuralAttacks(t *testing.T) {
	// Hand-build a header+table that passes the table checksum but declares
	// hostile section geometry; Decode must reject each typed.
	build := func(kind1, kind2 uint32, off1, len1, off2, len2 uint64) []byte {
		le := binary.LittleEndian
		table := make([]byte, 2*entrySize)
		put := func(e []byte, kind uint32, off, sz uint64) {
			le.PutUint32(e[0:4], kind)
			le.PutUint64(e[8:16], off)
			le.PutUint64(e[16:24], sz)
		}
		put(table[:entrySize], kind1, off1, len1)
		put(table[entrySize:], kind2, off2, len2)
		total := uint64(4096)
		img := make([]byte, total)
		le.PutUint64(img[0:8], Magic)
		le.PutUint32(img[8:12], Version)
		le.PutUint32(img[12:16], 2)
		le.PutUint64(img[16:24], total)
		le.PutUint64(img[24:32], headerSize)
		copy(img[headerSize:], table)
		// Fix up payload checksums so only the structural check can reject.
		fix := func(e []byte, off, sz uint64) {
			if off+sz <= total {
				sum := sha256sum(img[off : off+sz])
				copy(e[24:56], sum)
			}
		}
		fix(img[headerSize:headerSize+entrySize], off1, len1)
		fix(img[headerSize+entrySize:headerSize+2*entrySize], off2, len2)
		tsum := sha256sum(img[headerSize : headerSize+2*entrySize])
		copy(img[32:64], tsum)
		return img
	}
	cases := []struct {
		name string
		img  []byte
	}{
		{"unknown kind", build(77, uint32(SecTopo), 192, 8, 256, 8)},
		{"duplicate kind", build(uint32(SecMeta), uint32(SecMeta), 192, 8, 256, 8)},
		{"misaligned", build(uint32(SecMeta), uint32(SecTopo), 200, 8, 256, 8)},
		{"overlap", build(uint32(SecMeta), uint32(SecTopo), 192, 100, 192, 8)},
		{"overrun", build(uint32(SecMeta), uint32(SecTopo), 192, 8, 4096, 64)},
		{"huge len", build(uint32(SecMeta), uint32(SecTopo), 192, 1<<60, 256, 8)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.img)
			if err == nil {
				t.Fatal("hostile image decoded cleanly")
			}
			if !errors.Is(err, resilience.ErrInvalidInput) {
				t.Fatalf("error %v is outside the taxonomy", err)
			}
		})
	}
}

func TestWriteRejectsBadSectionSets(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, nil); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Errorf("empty section set: %v", err)
	}
	dup := []Section{{Kind: SecMeta}, {Kind: SecMeta}}
	if _, err := Write(&buf, dup); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Errorf("duplicate kinds: %v", err)
	}
}

func TestViews(t *testing.T) {
	if _, err := Float64s(make([]byte, 12)); !errors.Is(err, ErrBadStore) {
		t.Errorf("ragged float64 view: %v", err)
	}
	if _, err := Float32s(make([]byte, 6)); !errors.Is(err, ErrBadStore) {
		t.Errorf("ragged float32 view: %v", err)
	}
	v, err := Float64s(nil)
	if err != nil || v != nil {
		t.Errorf("empty view: %v %v", v, err)
	}
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b[8:], 0x3FF0000000000000) // 1.0
	f, err := Float64s(b)
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != 0 || f[1] != 1 {
		t.Errorf("view decoded %v", f)
	}
}

func TestOpenMissingAndShort(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("Open of missing file succeeded")
	}
	short := filepath.Join(t.TempDir(), "short")
	if err := os.WriteFile(short, []byte("tiny"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(short); !errors.Is(err, ErrBadStore) {
		t.Errorf("short file: %v", err)
	}
	// Header lies about the size: Open must reject before reading the body.
	img := make([]byte, 256)
	binary.LittleEndian.PutUint64(img[0:8], Magic)
	binary.LittleEndian.PutUint32(img[8:12], Version)
	binary.LittleEndian.PutUint32(img[12:16], 1)
	binary.LittleEndian.PutUint64(img[16:24], 1<<40) // declares a terabyte
	liar := filepath.Join(t.TempDir(), "liar")
	if err := os.WriteFile(liar, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(liar); !errors.Is(err, ErrBadStore) {
		t.Errorf("lying header: %v", err)
	}
}

func TestOpenMmapMissingAndShort(t *testing.T) {
	if _, err := OpenMmap(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("OpenMmap of missing file succeeded")
	}
	short := filepath.Join(t.TempDir(), "short")
	if err := os.WriteFile(short, []byte("tiny"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMmap(short); !errors.Is(err, ErrBadStore) {
		t.Errorf("short file: %v", err)
	}
	// A corrupt image must unmap before the error returns (exercised under
	// -race: a leaked mapping would keep the File's views alive).
	bad := writeTemp(t, testSections())
	img, err := os.ReadFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 0xff
	if err := os.WriteFile(bad, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMmap(bad); err == nil {
		t.Error("OpenMmap of corrupt image succeeded")
	}
}

func TestWriteFileErrors(t *testing.T) {
	// Target directory does not exist: the temp file cannot be created.
	missing := filepath.Join(t.TempDir(), "no", "such", "dir", "x.store")
	if _, err := WriteFile(missing, testSections()); err == nil {
		t.Error("WriteFile into a missing directory succeeded")
	}
	// Invalid section set: the error propagates and no file is left behind.
	dir := t.TempDir()
	path := filepath.Join(dir, "y.store")
	if _, err := WriteFile(path, nil); err == nil {
		t.Error("WriteFile with no sections succeeded")
	}
	if _, err := os.Stat(path); err == nil {
		t.Error("failed WriteFile left a destination file")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("failed WriteFile left %d stray files in the directory", len(ents))
	}
}
