package hss

import (
	"errors"
	"fmt"

	"gofmm/internal/core"
	"gofmm/internal/resilience"
)

// ErrNotHSS is returned when a GOFMM compression has a nonzero sparse
// correction and therefore no HSS structure to convert.
var ErrNotHSS = errors.New("hss: GOFMM form has direct (near) interactions; compress with Budget 0")

// FromGOFMM converts a GOFMM compression in HSS mode (Budget 0: S = 0, far
// lists are exactly the siblings) into an HSS representation, unlocking the
// hierarchical direct solver (Factor/Solve) for geometry-obliviously
// permuted matrices — the combination of the paper's contribution with its
// stated future work. The conversion is exact: GOFMM's column
// interpolation K_{Iβ} ≈ K_{Iβ̃}·P_β̃β is, by symmetry, the row basis
// E_β = P_β̃βᵀ, the couplings are B = K(l̃, r̃), and the leaf diagonal
// blocks transfer directly.
func FromGOFMM(g *core.Hierarchical) (*HSS, error) {
	if !g.IsHSS() {
		return nil, ErrNotHSS
	}
	// The conversion gathers diagonal and coupling blocks from the entry
	// oracle; an operator loaded from the store has none to gather from.
	if !g.HasOracle() {
		return nil, fmt.Errorf("hss: conversion gathers fresh blocks: %w", core.ErrNoOracle)
	}
	t := g.Tree
	h := &HSS{
		Cfg:       Config{LeafSize: g.Cfg.LeafSize, Rank: g.Cfg.MaxRank, Tol: g.Cfg.Tol},
		Tree:      t,
		nodes:     make([]node, len(t.Nodes)),
		n:         g.K.Dim(),
		Perm:      append([]int(nil), t.Perm...),
		IPerm:     append([]int(nil), t.IPerm...),
		Telemetry: g.Cfg.Telemetry,
		Workspace: g.Cfg.Workspace,
	}
	for id := range t.Nodes {
		if t.IsLeaf(id) {
			idx := t.Indices(id)
			h.nodes[id].D = core.NewGathered(g.K, idx, idx)
			if id == 0 {
				return h, nil // degenerate single-leaf tree
			}
		}
		if !t.IsLeaf(id) {
			l, r := t.Left(id), t.Right(id)
			h.nodes[id].B = core.NewGathered(g.K, g.Skeleton(l), g.Skeleton(r))
		}
		if id == 0 {
			continue
		}
		p := g.Proj(id)
		if p == nil {
			return nil, fmt.Errorf("%w: GOFMM node %d has no interpolation matrix",
				resilience.ErrInvalidInput, id)
		}
		h.nodes[id].E = p.Transposed()
		h.nodes[id].skel = g.Skeleton(id)
		if s := len(h.nodes[id].skel); s > h.MaxRankSeen {
			h.MaxRankSeen = s
		}
	}
	return h, nil
}
