package main

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"gofmm/internal/core"
	"gofmm/internal/experiments"
	"gofmm/internal/linalg"
	"gofmm/internal/telemetry"
	"gofmm/internal/workspace"
)

// pr3Bench measures the PR 3 hot-path kernels — the register-tiled GEMM and
// the pooled zero-allocation matvec — and returns a gofmm.bench/v1 record
// whose metrics the CI regression gate compares against a checked-in
// baseline (ci/BENCH_pr3_baseline.json). All measurements are best-of-R
// wall-clock: the minimum is the right statistic for a throughput gate
// because every source of noise (scheduler, turbo, page faults) only ever
// slows a run down.
func pr3Bench(w io.Writer, n int, seed int64, rec *telemetry.Recorder) *telemetry.RunRecord {
	rr := telemetry.NewRunRecord("pr3")
	rr.Params["n"] = n
	rr.Params["seed"] = seed

	// Dense GEMM throughput at the macro-kernel's home shape.
	const gd = 512
	rng := rand.New(rand.NewSource(seed))
	A := linalg.GaussianMatrix(rng, gd, gd)
	B := linalg.GaussianMatrix(rng, gd, gd)
	C := linalg.NewMatrix(gd, gd)
	linalg.Gemm(false, false, 1, A, B, 0, C) // warm up packing pools
	best := time.Duration(1 << 62)
	for rep := 0; rep < 5; rep++ {
		t0 := time.Now()
		linalg.Gemm(false, false, 1, A, B, 0, C)
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	gemmGF := 2 * float64(gd) * float64(gd) * float64(gd) / best.Seconds() / 1e9
	rr.Metrics["gemm512_gflops"] = gemmGF
	fmt.Fprintf(w, "gemm 512x512x512: %.2f GFLOPS\n", gemmGF)

	// Compressed matvec: fresh-buffer path vs pooled evaluator path on the
	// same operator and weights.
	p := experiments.GetProblem("K02", n, seed)
	const r = 16
	cfg := core.Config{
		LeafSize: 128, MaxRank: 128, Tol: 1e-5, Kappa: 32, Budget: 0.03,
		Distance: core.Angle, Exec: core.Sequential, Seed: seed,
		CacheBlocks: true, Workspace: workspace.New(), Telemetry: rec,
	}
	h, err := core.Compress(p.K, cfg)
	if err != nil {
		fmt.Fprintln(w, err)
		return rr
	}
	W := linalg.GaussianMatrix(rng, p.K.Dim(), r)

	fresh := time.Duration(1 << 62)
	h.Matvec(W) // warm up caches and pool
	for rep := 0; rep < 5; rep++ {
		t0 := time.Now()
		h.Matvec(W)
		if d := time.Since(t0); d < fresh {
			fresh = d
		}
	}
	rr.Metrics["matvec_ms"] = fresh.Seconds() * 1e3

	ev := h.NewEvaluator(r)
	defer ev.Close()
	U := linalg.NewMatrix(p.K.Dim(), r)
	ev.MatvecInto(W, U)
	pooled := time.Duration(1 << 62)
	for rep := 0; rep < 5; rep++ {
		t0 := time.Now()
		ev.MatvecInto(W, U)
		if d := time.Since(t0); d < pooled {
			pooled = d
		}
	}
	rr.Metrics["matvec_pooled_ms"] = pooled.Seconds() * 1e3
	allocs := testing.AllocsPerRun(10, func() { ev.MatvecInto(W, U) })
	rr.Metrics["matvec_pooled_allocs"] = allocs
	st := h.Cfg.Workspace.Stats()
	rr.Metrics["workspace_hits"] = float64(st.Hits)
	rr.Metrics["workspace_bytes_reused"] = float64(st.BytesReused)
	fmt.Fprintf(w, "matvec (N=%d, r=%d): %.3f ms per call, pooled %.3f ms, %.0f allocs/op\n",
		p.K.Dim(), r, fresh.Seconds()*1e3, pooled.Seconds()*1e3, allocs)
	fmt.Fprintf(w, "workspace: %d hits, %d misses, %.1f MB reused\n",
		st.Hits, st.Misses, float64(st.BytesReused)/1e6)
	return rr
}
