// Package mmaplife flags store-view escapes: slices obtained from
// store.Float64s / store.Float32s / (*store.File).Section are zero-copy
// windows into a memory-mapped operator file, valid only while the owning
// mapping is open. Storing one into a struct field, a global, or a channel,
// returning it, or capturing it in a goroutine lets it outlive the
// release path (ReleaseStore / last-ref unmap) and turns into a fault on
// first touch. The fix is to copy the data out — or, when zero-copy
// retention is the point, to tie the value's lifetime to the mapping
// owner and say so in a `//gofmmlint:ignore mmaplife <reason>` directive.
//
// The analysis is a flow-sensitive may-taint over the cfg layer: view
// results taint their variables, slicing and (for reference-typed
// elements) indexing propagate, reassignment kills, and the sinks above
// report. Plain call arguments do not report — passing a view down a call
// stack is borrowing, and the repo's kernels do it pervasively.
package mmaplife

import (
	"go/ast"
	"go/types"

	"gofmm/internal/analysis/framework"
	"gofmm/internal/analysis/framework/cfg"
)

// Analyzer is the mmaplife analyzer.
var Analyzer = &framework.Analyzer{
	Name: "mmaplife",
	Doc: "flag store-view slices (store.Float64s/Float32s, File.Section) " +
		"escaping their mapping's lifetime: returned, stored into fields, " +
		"globals or channels, or captured by goroutines — copy the data " +
		"or keep the mapping owner alive instead",
	Run: run,
}

// taintFact is the set of may-tainted objects. Immutable; clone to change.
type taintFact map[types.Object]bool

func (f taintFact) clone() taintFact {
	out := make(taintFact, len(f)+1)
	for k := range f {
		out[k] = true
	}
	return out
}

func run(pass *framework.Pass) error {
	c := &checker{pass: pass}
	for _, file := range pass.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			c.checkFunc(fd.Body)
		}
	}
	return nil
}

type checker struct {
	pass *framework.Pass
}

// isSource reports whether call produces a store view (in its first
// result). Matching is by package name so golden stubs qualify.
func (c *checker) isSource(call *ast.CallExpr) bool {
	if framework.IsMethod(c.pass.TypesInfo, call, "store", "File", "Section") {
		return true
	}
	fn := framework.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "store" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Name() == "Float64s" || fn.Name() == "Float32s"
}

// tainted reports whether expression e evaluates to a view under fact f:
// a tainted variable, a slice of one, an index into one with a
// reference-typed element, or a direct source call.
func (c *checker) tainted(f taintFact, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[x]
		}
		return obj != nil && f[obj]
	case *ast.SliceExpr:
		return c.tainted(f, x.X)
	case *ast.IndexExpr:
		return c.tainted(f, x.X) && isRefType(c.pass.TypesInfo.Types[x].Type)
	case *ast.CallExpr:
		return c.isSource(x)
	}
	return false
}

// isRefType reports whether t aliases underlying storage (slices and
// pointers); scalar loads out of a view are copies and safe.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer:
		return true
	}
	return false
}

type taintAnalysis struct{ c *checker }

func (a taintAnalysis) EntryFact() cfg.Fact { return taintFact{} }

func (a taintAnalysis) Merge(x, y cfg.Fact) cfg.Fact {
	xs, ys := x.(taintFact), y.(taintFact)
	out := xs.clone()
	for k := range ys {
		out[k] = true
	}
	return out
}

func (a taintAnalysis) Equal(x, y cfg.Fact) bool {
	xs, ys := x.(taintFact), y.(taintFact)
	if len(xs) != len(ys) {
		return false
	}
	for k := range xs {
		if !ys[k] {
			return false
		}
	}
	return true
}

func (a taintAnalysis) Transfer(f cfg.Fact, n ast.Node) cfg.Fact {
	in := f.(taintFact)
	c := a.c
	switch s := n.(type) {
	case *ast.AssignStmt:
		// Multi-value form `v, err := source(b)`: the view is result 0.
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
				return c.setTaint(in, s.Lhs[0], c.isSource(call))
			}
			return in
		}
		out := in
		for i, lhs := range s.Lhs {
			if i < len(s.Rhs) {
				out = c.setTaint(out, lhs, c.tainted(out, s.Rhs[i]))
			}
		}
		return out
	case *ast.RangeStmt:
		// Ranging over a tainted slice-of-slices taints the element; over
		// a flat float view it yields scalars, which are copies.
		if s.Value != nil && c.tainted(in, s.X) {
			if id, ok := s.Value.(*ast.Ident); ok && isRefType(c.pass.TypesInfo.TypeOf(id)) {
				return c.setTaint(in, id, true)
			}
		}
		return in
	}
	return in
}

// setTaint marks or clears the object named by lhs.
func (c *checker) setTaint(f taintFact, lhs ast.Expr, taint bool) taintFact {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return f
	}
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return f
	}
	if f[obj] == taint {
		return f
	}
	out := f.clone()
	if taint {
		out[obj] = true
	} else {
		delete(out, obj)
	}
	return out
}

// checkFunc solves the taint analysis over body and reports the sinks.
// Closures are analyzed separately — with the taints captured from the
// enclosing scope at the goroutine check, and fresh otherwise.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	g := cfg.New(body)
	res := cfg.Solve(g, taintAnalysis{c: c})
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			before, ok := res.Before(n)
			if !ok {
				continue
			}
			c.checkNode(n, before.(taintFact))
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			c.checkFunc(fl.Body)
			return false
		}
		return true
	})
}

func (c *checker) checkNode(n ast.Node, f taintFact) {
	switch s := n.(type) {
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if c.tainted(f, r) {
				c.pass.Reportf(r.Pos(),
					"returning a store view: the caller outlives the mapping owner's release; copy the data or transfer mapping ownership explicitly")
			}
		}
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			rhs := s.Rhs[0]
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			} else if i > 0 {
				break // multi-value call: only result 0 is a view
			}
			if !c.tainted(f, rhs) {
				continue
			}
			switch target := ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr:
				c.pass.Reportf(lhs.Pos(),
					"storing a store view into a field: the struct can outlive the mapping's release; copy the data or keep the owning store.File open for the struct's lifetime")
			case *ast.IndexExpr:
				c.pass.Reportf(lhs.Pos(),
					"storing a store view into a container: it can outlive the mapping's release; copy the data instead")
			case *ast.Ident:
				if obj := c.pass.TypesInfo.Uses[target]; obj != nil && obj.Parent() == c.pass.Pkg.Scope() {
					c.pass.Reportf(lhs.Pos(),
						"storing a store view into a package-level variable: it outlives the mapping's release; copy the data instead")
				}
			}
		}
	case *ast.SendStmt:
		if c.tainted(f, s.Value) {
			c.pass.Reportf(s.Value.Pos(),
				"sending a store view over a channel: the receiver can outlive the mapping's release; copy the data instead")
		}
	case *ast.GoStmt:
		c.checkGoCapture(s, f)
	}
	// Composite literals store views into escaping values wherever they
	// appear in the node.
	cfg.Walk(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		cl, ok := x.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, elt := range cl.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if c.tainted(f, v) {
				c.pass.Reportf(v.Pos(),
					"building a composite literal around a store view: the value can outlive the mapping's release; copy the data instead")
			}
		}
		return true
	})
}

// checkGoCapture reports views reaching a goroutine, by closure capture or
// by argument: the goroutine's lifetime is unbounded relative to the
// mapping owner's.
func (c *checker) checkGoCapture(s *ast.GoStmt, f taintFact) {
	for _, arg := range s.Call.Args {
		if c.tainted(f, arg) {
			c.pass.Reportf(arg.Pos(),
				"passing a store view to a goroutine: it can outlive the mapping's release; copy the data instead")
		}
	}
	fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(fl.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil && f[obj] {
			c.pass.Reportf(id.Pos(),
				"goroutine captures store view %s: it can outlive the mapping's release; copy the data or pass a copy in", id.Name)
		}
		return true
	})
}
