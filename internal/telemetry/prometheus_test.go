package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGoldenPrometheus(t *testing.T) {
	r := goldenRecorder()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Structural checks that hold regardless of the fixture's exact numbers.
	for _, want := range []string{
		"# TYPE gofmm_oracle_at_total counter",
		"gofmm_oracle_at_total 1234",
		"# TYPE gofmm_sched_utilization gauge",
		"gofmm_sched_utilization 0.875",
		"# TYPE gofmm_skel_rank summary",
		`gofmm_skel_rank{quantile="0.5"}`,
		`gofmm_skel_rank{quantile="0.95"}`,
		`gofmm_skel_rank{quantile="0.99"}`,
		"gofmm_skel_rank_sum 72",
		"gofmm_skel_rank_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name[{labels}] value" with a sanitized
	// metric name — the same syntax check CI applies to the live scrape.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("exposition line not 'name value': %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if got := SanitizeMetricName(name); got != name {
			t.Fatalf("unsanitized metric name %q on line %q", name, line)
		}
	}
	checkGolden(t, "prometheus.golden.txt", buf.Bytes())
}

func TestPrometheusDeterministic(t *testing.T) {
	r := goldenRecorder()
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two scrapes of the same snapshot differ")
	}
}

func TestPromFloatSpecials(t *testing.T) {
	for v, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		1.5:          "1.5",
		0:            "0",
	} {
		if got := promFloat(v); got != want {
			t.Fatalf("promFloat(%g) = %q, want %q", v, got, want)
		}
	}
	if got := promFloat(math.NaN()); got != "NaN" {
		t.Fatalf("promFloat(NaN) = %q", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 100 samples at 10ms, 10 at 100ms, 1 at 1000ms: p50 must sit near the
	// bulk, p99 near the tail, and everything stays inside [Min, Max].
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	h.Observe(1000)
	st := h.stat()
	if st.Count != 111 {
		t.Fatalf("count = %d", st.Count)
	}
	p50 := st.Quantile(0.5)
	p99 := st.Quantile(0.99)
	if p50 < st.Min || p50 > 16 {
		t.Fatalf("p50 = %g, want near the 10ms bulk", p50)
	}
	if p99 < 64 || p99 > st.Max {
		t.Fatalf("p99 = %g, want near the 100ms tail", p99)
	}
	if p50 > p99 {
		t.Fatalf("quantiles not monotone: p50 %g > p99 %g", p50, p99)
	}
	// Edge cases.
	if got := st.Quantile(0); got != st.Min {
		t.Fatalf("q=0 → %g, want Min %g", got, st.Min)
	}
	if got := st.Quantile(1); got != st.Max {
		t.Fatalf("q=1 → %g, want Max %g", got, st.Max)
	}
	var empty HistogramStat
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g", got)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"matvec.latency_ms":  "matvec_latency_ms",
		"batch.flushes":      "batch_flushes",
		"already_clean:name": "already_clean:name",
		"9lives":             "_9lives",
		"":                   "_",
		"a b/c":              "a_b_c",
	} {
		if got := SanitizeMetricName(in); got != want {
			t.Fatalf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
	// Clean names must be returned unchanged (identity, no rebuild).
	clean := "gofmm_matvec_latency_ms"
	if got := SanitizeMetricName(clean); got != clean {
		t.Fatalf("clean name mangled: %q", got)
	}
}

func TestSanitizeLabel(t *testing.T) {
	if got := SanitizeLabel("SKEL(1)"); got != "SKEL(1)" {
		t.Fatalf("printable label changed: %q", got)
	}
	if got := SanitizeLabel("bad\nname\ttab\x7f"); got != "bad name tab " {
		t.Fatalf("control chars not spaced: %q", got)
	}
}
