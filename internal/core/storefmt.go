package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Section payload codec for the operator store (gofmm.store/v1). The
// container framing — header, section table, checksums, alignment — lives
// in internal/store; this file owns the byte layout inside the four
// sections core writes:
//
//	meta : scalar payload version + dimensions + the Config snapshot
//	topo : matrix table, permutation, per-node lists and matrix refs
//	plan : the compiled op stream, stage schedule and digest
//	arena: raw little-endian column-major float data (one per precision)
//
// Everything integer is little-endian int64; booleans are one byte. The
// reader is sticky-error and bounds every allocation by the bytes actually
// remaining in the section, so a corrupt length field can never cost more
// memory than the (already size-validated) file itself.

// storePayloadVersion versions the section payloads independently of the
// container (bump when the byte layout inside a section changes).
const storePayloadVersion = 1

// matRec is one matrix-table entry: a precision tag (4 or 8), the matrix
// shape, and its byte offset into the arena section of that precision.
type matRec struct {
	prec, rows, cols, off int64
}

// secWriter accumulates a section payload.
type secWriter struct {
	b []byte
}

func (w *secWriter) i64(v int64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, uint64(v))
}

func (w *secWriter) f64(v float64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(v))
}

func (w *secWriter) boolean(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

// ints writes a length-prefixed index list.
func (w *secWriter) ints(xs []int) {
	w.i64(int64(len(xs)))
	for _, x := range xs {
		w.i64(int64(x))
	}
}

// blob writes a length-prefixed byte string.
func (w *secWriter) blob(p []byte) {
	w.i64(int64(len(p)))
	w.b = append(w.b, p...)
}

// secReader parses a section payload with sticky errors: after the first
// failure every getter returns a zero value and the error surfaces once
// through err(). All failures wrap ErrBadFormat.
type secReader struct {
	b    []byte
	off  int
	what string // section name for error context
	fail error
}

func newSecReader(name string, b []byte) *secReader {
	return &secReader{b: b, what: name}
}

func (r *secReader) failf(format string, args ...any) {
	if r.fail == nil {
		r.fail = fmt.Errorf("%w: store %s section: %s", ErrBadFormat, r.what,
			fmt.Sprintf(format, args...))
	}
}

// err returns the first parse failure.
func (r *secReader) err() error { return r.fail }

// remaining returns the unconsumed byte count.
func (r *secReader) remaining() int { return len(r.b) - r.off }

// finish fails when the section has unconsumed bytes (exact-consumption
// hardening: a payload with trailing garbage is not a v1 payload).
func (r *secReader) finish() error {
	if r.fail == nil && r.remaining() != 0 {
		r.failf("%d trailing bytes", r.remaining())
	}
	return r.fail
}

func (r *secReader) i64() int64 {
	if r.fail != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.failf("truncated at byte %d", r.off)
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *secReader) f64() float64 {
	return math.Float64frombits(uint64(r.i64()))
}

func (r *secReader) boolean() bool {
	if r.fail != nil {
		return false
	}
	if r.remaining() < 1 {
		r.failf("truncated at byte %d", r.off)
		return false
	}
	v := r.b[r.off]
	r.off++
	if v > 1 {
		r.failf("boolean byte %d at offset %d", v, r.off-1)
		return false
	}
	return v == 1
}

// dim reads an int64 bounded like the v2 stream's dimension fields.
func (r *secReader) dim() int {
	v := r.i64()
	if v < -1 || v > maxSerialDim {
		r.failf("length field %d out of range", v)
		return 0
	}
	return int(v)
}

// ints reads a length-prefixed index list with every entry in [0, bound).
// The allocation is bounded by the bytes remaining in the section, not by
// the declared length.
func (r *secReader) ints(bound int) []int {
	n := r.dim()
	if r.fail != nil {
		return nil
	}
	if n < 0 {
		return nil
	}
	if n > r.remaining()/8 {
		r.failf("list of %d entries in %d remaining bytes", n, r.remaining())
		return nil
	}
	out := make([]int, n)
	for i := range out {
		v := r.i64()
		if r.fail != nil {
			return nil
		}
		if v < 0 || v >= int64(bound) {
			r.failf("index %d outside [0,%d)", v, bound)
			return nil
		}
		out[i] = int(v)
	}
	return out
}

// blob reads a length-prefixed byte string of at most maxLen bytes.
func (r *secReader) blob(maxLen int) []byte {
	n := r.dim()
	if r.fail != nil {
		return nil
	}
	if n < 0 || n > maxLen || n > r.remaining() {
		r.failf("blob of %d bytes (max %d, %d remaining)", n, maxLen, r.remaining())
		return nil
	}
	out := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return out
}
