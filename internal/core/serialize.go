package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/tree"
)

// Serialization of the compressed representation. Compression is the
// expensive phase (O(N log N) with large constants), so persisting the
// result and reloading it next to a fresh entry oracle is a practical
// workflow: the stored form carries the permutation, per-node skeletons and
// interpolation matrices, the interaction lists, and (optionally) the
// cached near/far blocks — everything Matvec needs.

const (
	serialMagic = 0x474F464D // "GOFM"
	// Version 2 adds the per-node denseFallback flag (graceful numerical
	// degradation); version-1 streams are still accepted (flag false).
	serialVersion    = 2
	serialMinVersion = 1

	// maxSerialDim bounds every dimension-like quantity in the stream. A
	// corrupted or adversarial length field must produce ErrBadFormat, not
	// a multi-gigabyte allocation.
	maxSerialDim = 1 << 31
)

// ErrBadFormat is returned when the input is not a GOFMM serialization.
var ErrBadFormat = errors.New("core: bad serialization format")

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serializes the compressed representation (not the matrix oracle).
func (h *Hierarchical) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	le := binary.LittleEndian
	wr := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(bw, le, v); err != nil {
				return err
			}
		}
		return nil
	}
	writeInts := func(xs []int) error {
		if err := wr(int64(len(xs))); err != nil {
			return err
		}
		for _, x := range xs {
			if err := wr(int64(x)); err != nil {
				return err
			}
		}
		return nil
	}
	writeMat := func(m *linalg.Matrix) error {
		if m == nil {
			return wr(int64(-1))
		}
		if err := wr(int64(m.Rows), int64(m.Cols)); err != nil {
			return err
		}
		for j := 0; j < m.Cols; j++ {
			if err := wr(m.Col(j)); err != nil {
				return err
			}
		}
		return nil
	}
	c := h.Cfg
	if err := wr(uint32(serialMagic), uint32(serialVersion),
		int64(h.K.Dim()), int64(c.LeafSize), int64(c.MaxRank), c.Tol,
		int64(c.Kappa), c.Budget, int64(c.Distance), c.CacheBlocks,
		int64(c.SampleRows), c.Seed); err != nil {
		return cw.n, err
	}
	if err := writeInts(h.Tree.Perm); err != nil {
		return cw.n, err
	}
	if err := wr(int64(len(h.nodes))); err != nil {
		return cw.n, err
	}
	for id := range h.nodes {
		nd := &h.nodes[id]
		if err := writeInts(nd.skel); err != nil {
			return cw.n, err
		}
		if err := writeMat(nd.proj); err != nil {
			return cw.n, err
		}
		if err := writeInts(nd.near); err != nil {
			return cw.n, err
		}
		if err := writeInts(nd.far); err != nil {
			return cw.n, err
		}
		if err := wr(nd.denseFallback); err != nil {
			return cw.n, err
		}
		if err := wr(nd.cacheNear != nil); err != nil {
			return cw.n, err
		}
		for _, m := range nd.cacheNear {
			if err := writeMat(m); err != nil {
				return cw.n, err
			}
		}
		if err := wr(nd.cacheFar != nil); err != nil {
			return cw.n, err
		}
		for _, m := range nd.cacheFar {
			if err := writeMat(m); err != nil {
				return cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom reconstructs a compressed representation previously written with
// WriteTo. K is the optional entry oracle:
//
//   - Passing the matrix that was compressed (only its dimension can be
//     validated) restores the full API, including the paths that sample
//     fresh entries.
//   - Passing nil loads the operator oracle-free — the serving workflow,
//     where only the compressed form ships. Matvec/Matmat then work exactly
//     when every block they touch was cached into the stream (CacheBlocks
//     at compress time); oracle-requiring paths — interpreting uncached
//     blocks, CompilePlanCtx when compilation would gather, hss.FromGOFMM —
//     return a typed ErrNoOracle instead. HasOracle reports the state and
//     AttachOracle upgrades it later.
//
// Executor-related fields of the returned Cfg (Exec, NumWorkers,
// WorkerSpecs) are zero — set them before calling Matvec if a parallel
// executor is wanted.
//
// The stream is treated as untrusted: truncated, corrupted or adversarial
// input yields an error (usually wrapping ErrBadFormat) — never a panic and
// never an allocation sized by an unvalidated length field. Every length is
// bounded, every index range-checked, and the permutation verified to be a
// permutation before the tree is rebuilt.
func ReadFrom(r io.Reader, K SPD) (*Hierarchical, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	rd := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Read(br, le, v); err != nil {
				return err
			}
		}
		return nil
	}
	readInt := func() (int, error) {
		var v int64
		if err := rd(&v); err != nil {
			return 0, err
		}
		if v < -1 || v > maxSerialDim {
			return 0, fmt.Errorf("%w: length field %d out of range", ErrBadFormat, v)
		}
		return int(v), nil
	}
	// readInts reads a length-prefixed index list of at most maxLen entries,
	// each in [0, bound).
	readInts := func(maxLen, bound int) ([]int, error) {
		n, err := readInt()
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, nil
		}
		if n > maxLen {
			return nil, fmt.Errorf("%w: list of %d exceeds limit %d", ErrBadFormat, n, maxLen)
		}
		out := make([]int, n)
		for i := range out {
			if out[i], err = readInt(); err != nil {
				return nil, err
			}
			if out[i] < 0 || out[i] >= bound {
				return nil, fmt.Errorf("%w: index %d out of [0,%d)", ErrBadFormat, out[i], bound)
			}
		}
		return out, nil
	}
	// readMat reads a matrix with both dimensions in [0, maxDim].
	readMat := func(maxDim int) (*linalg.Matrix, error) {
		rows, err := readInt()
		if err != nil {
			return nil, err
		}
		if rows < 0 {
			return nil, nil
		}
		cols, err := readInt()
		if err != nil {
			return nil, err
		}
		if rows > maxDim || cols < 0 || cols > maxDim {
			return nil, fmt.Errorf("%w: %d×%d matrix exceeds limit %d", ErrBadFormat, rows, cols, maxDim)
		}
		m := linalg.NewMatrix(rows, cols)
		for j := 0; j < cols; j++ {
			if err := rd(m.Col(j)); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
	var magic, version uint32
	if err := rd(&magic, &version); err != nil {
		return nil, err
	}
	if magic != serialMagic {
		return nil, ErrBadFormat
	}
	if version < serialMinVersion || version > serialVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadFormat, version)
	}
	var n64, leaf, maxRank, kappa, dist, sampleRows, seed int64
	var tol, budget float64
	var cache bool
	if err := rd(&n64, &leaf, &maxRank, &tol, &kappa, &budget, &dist, &cache, &sampleRows, &seed); err != nil {
		return nil, err
	}
	if n64 <= 0 || n64 > maxSerialDim {
		return nil, fmt.Errorf("%w: dimension %d", ErrBadFormat, n64)
	}
	n := int(n64)
	if leaf < 1 || leaf > n64 {
		return nil, fmt.Errorf("%w: leaf size %d for dimension %d", ErrBadFormat, leaf, n64)
	}
	if maxRank < 0 || maxRank > maxSerialDim || kappa < 0 || kappa > maxSerialDim ||
		sampleRows < 0 || sampleRows > maxSerialDim {
		return nil, fmt.Errorf("%w: negative or oversized parameter", ErrBadFormat)
	}
	if math.IsNaN(tol) || math.IsInf(tol, 0) || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return nil, fmt.Errorf("%w: non-finite tolerance or budget", ErrBadFormat)
	}
	if K == nil {
		K = noOracle{n: n}
	} else if K.Dim() != n {
		return nil, fmt.Errorf("%w: oracle dimension %d does not match stored %d",
			resilience.ErrInvalidInput, K.Dim(), n64)
	}
	h := &Hierarchical{K: K, Cfg: Config{
		LeafSize: int(leaf), MaxRank: int(maxRank), Tol: tol, Kappa: int(kappa),
		Budget: budget, Distance: Distance(dist), CacheBlocks: cache,
		SampleRows: int(sampleRows), Seed: seed, Exec: Sequential, NumWorkers: 1,
	}}
	perm, err := readInts(n, n)
	if err != nil {
		return nil, err
	}
	if len(perm) != n {
		return nil, fmt.Errorf("%w: permutation length %d", ErrBadFormat, len(perm))
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if seen[p] {
			return nil, fmt.Errorf("%w: duplicate index %d in permutation", ErrBadFormat, p)
		}
		seen[p] = true
	}
	h.Tree = tree.FromPermutation(perm, int(leaf))
	numNodes, err := readInt()
	if err != nil {
		return nil, err
	}
	if numNodes != len(h.Tree.Nodes) {
		return nil, fmt.Errorf("%w: %d nodes for tree of %d", ErrBadFormat, numNodes, len(h.Tree.Nodes))
	}
	h.nodes = make([]node, numNodes)
	for id := 0; id < numNodes; id++ {
		nd := &h.nodes[id]
		if nd.skel, err = readInts(n, n); err != nil {
			return nil, err
		}
		if nd.proj, err = readMat(n); err != nil {
			return nil, err
		}
		if nd.near, err = readInts(numNodes, numNodes); err != nil {
			return nil, err
		}
		if nd.far, err = readInts(numNodes, numNodes); err != nil {
			return nil, err
		}
		if version >= 2 {
			if err := rd(&nd.denseFallback); err != nil {
				return nil, err
			}
		}
		var hasNear, hasFar bool
		if err := rd(&hasNear); err != nil {
			return nil, err
		}
		if hasNear {
			nd.cacheNear = make([]*linalg.Matrix, len(nd.near))
			for k := range nd.cacheNear {
				if nd.cacheNear[k], err = readMat(n); err != nil {
					return nil, err
				}
			}
		}
		if err := rd(&hasFar); err != nil {
			return nil, err
		}
		if hasFar {
			nd.cacheFar = make([]*linalg.Matrix, len(nd.far))
			for k := range nd.cacheFar {
				if nd.cacheFar[k], err = readMat(n); err != nil {
					return nil, err
				}
			}
		}
	}
	h.finishStats()
	return h, nil
}
