package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"gofmm/internal/core"
	"gofmm/internal/experiments"
	"gofmm/internal/linalg"
	"gofmm/internal/telemetry"
	"gofmm/internal/workspace"
)

// pr4Bench measures the PR 4 batched evaluation path: matvecs/sec for block
// widths r ∈ {1, 4, 16, 64} via one Matmat versus r looped single-vector
// Matvec calls, plus the coalescing factor of the BatchEvaluator under
// concurrent single-vector traffic. The headline gate metric is
// batched_x_speedup_r16: Matmat at r=16 must deliver ≥3× the matvecs/sec of
// 16 sequential Matvec calls (the GEMM-vs-GEMV shaped passes are where the
// win comes from). Best-of-R wall-clock, same rationale as pr3Bench.
func pr4Bench(w io.Writer, n int, seed int64, rec *telemetry.Recorder) *telemetry.RunRecord {
	rr := telemetry.NewRunRecord("pr4")
	rr.Params["n"] = n
	rr.Params["seed"] = seed

	p := experiments.GetProblem("K02", n, seed)
	cfg := core.Config{
		LeafSize: 128, MaxRank: 128, Tol: 1e-5, Kappa: 32, Budget: 0.03,
		Distance: core.Angle, Exec: core.Sequential, Seed: seed,
		CacheBlocks: true, Workspace: workspace.New(), Telemetry: rec,
	}
	h, err := core.Compress(p.K, cfg)
	if err != nil {
		fmt.Fprintln(w, err)
		return rr
	}
	dim := p.K.Dim()
	rng := rand.New(rand.NewSource(seed))

	best := func(reps int, f func()) time.Duration {
		f() // warm up caches and workspace pool
		b := time.Duration(1 << 62)
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0); d < b {
				b = d
			}
		}
		return b
	}

	fmt.Fprintf(w, "%-4s %14s %14s %9s\n", "r", "looped mv/s", "batched mv/s", "speedup")
	for _, r := range []int{1, 4, 16, 64} {
		W := linalg.GaussianMatrix(rng, dim, r)
		cols := make([]*linalg.Matrix, r)
		for j := 0; j < r; j++ {
			cols[j] = linalg.NewMatrix(dim, 1)
			copy(cols[j].Col(0), W.Col(j))
		}
		looped := best(5, func() {
			for j := 0; j < r; j++ {
				h.Matvec(cols[j])
			}
		})
		batched := best(5, func() { h.Matmat(W) })
		loopedRate := float64(r) / looped.Seconds()
		batchedRate := float64(r) / batched.Seconds()
		speedup := batchedRate / loopedRate
		rr.Metrics[fmt.Sprintf("looped_mvs_r%d", r)] = loopedRate
		rr.Metrics[fmt.Sprintf("batched_mvs_r%d", r)] = batchedRate
		rr.Metrics[fmt.Sprintf("batched_x_speedup_r%d", r)] = speedup
		fmt.Fprintf(w, "%-4d %14.1f %14.1f %8.2fx\n", r, loopedRate, batchedRate, speedup)
	}

	// Coalescing under concurrent traffic: 32 clients each push 8
	// single-vector requests through one BatchEvaluator; the flusher folds
	// them into Matmat calls. Report the achieved requests-per-flush.
	ev := h.NewBatchEvaluator(core.BatchOptions{MaxBatch: 32, MaxDelay: 500 * time.Microsecond})
	defer ev.Close()
	const clients, perClient = 32, 8
	reqs := make([]*linalg.Matrix, clients)
	for g := range reqs {
		reqs[g] = linalg.GaussianMatrix(rng, dim, 1)
	}
	t0 := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				if _, err := ev.Matvec(context.Background(), reqs[g]); err != nil {
					fmt.Fprintf(w, "batch request failed: %v\n", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	st := ev.Stats()
	factor := float64(st.Requests) / float64(st.Flushes)
	rr.Metrics["coalesce_requests"] = float64(st.Requests)
	rr.Metrics["coalesce_flushes"] = float64(st.Flushes)
	rr.Metrics["coalesce_factor"] = factor
	rr.Metrics["coalesce_mvs"] = float64(st.Requests) / elapsed.Seconds()
	fmt.Fprintf(w, "coalescing: %d concurrent requests in %d flushes (%.1f req/flush), %.1f mv/s end-to-end\n",
		st.Requests, st.Flushes, factor, float64(st.Requests)/elapsed.Seconds())
	return rr
}
