// Package lockguard enforces `// guarded by <mu>` field annotations with a
// flow-sensitive must-hold analysis over the cfg layer.
//
// Annotation grammar (on a struct field's doc or line comment):
//
//	// guarded by <mu>
//	// guarded by <mu> for <F1>, <F2>
//
// where <mu> names a sibling field of sync.Mutex or sync.RWMutex type. The
// plain form guards every access to the field; the `for` form guards only
// the named subfield selectors (for structs like core.Stats where one
// mutex covers two hot fields and the rest are written single-threaded
// during compression).
//
// A function (typically one documented "callers hold the lock") may carry
//
//	// called with <recv>.<mu> held
//
// in its doc comment, which seeds the analysis entry fact with that lock.
//
// The analysis tracks, per control-flow point, the set of locks that are
// must-held: x.mu.Lock() adds a write-mode fact, x.mu.RLock() a read-mode
// fact, explicit Unlock/RUnlock removes it, and `defer x.mu.Unlock()`
// removes nothing (the lock is held to every exit of the function, which
// is exactly what the deferred unlock guarantees). Path merges intersect:
// a lock is held at a join only if it is held on every incoming path, and
// a join of write- and read-mode holds weakens to read. Each read of a
// guarded field then requires at least read mode, and each write — an
// assignment, ++/--, map store or delete through the field, or taking its
// address — requires write mode.
//
// Function literals are analyzed as their own functions with an empty
// entry fact: a closure inherits no locks from its creation site, because
// nothing ties its execution to the window where the lock was held.
// Composite literals and accesses in _test.go files are exempt.
//
// Annotations are honored across package boundaries: when an accessed
// field belongs to another package, its declaring source file (recovered
// from the field object's position) is parsed once and its annotation
// applied. An exported guarded field with an unexported mutex is therefore
// unreadable directly from other packages — exactly the pressure that
// forces a locked accessor onto the owning type.
package lockguard

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"unicode"

	"gofmm/internal/analysis/framework"
	"gofmm/internal/analysis/framework/cfg"
)

// Analyzer is the lockguard analyzer.
var Analyzer = &framework.Analyzer{
	Name: "lockguard",
	Doc: "enforce `// guarded by <mu>` field annotations: every read or write " +
		"of a guarded field must be dominated by Lock/RLock of the named mutex " +
		"(writes require the write lock), checked flow-sensitively across " +
		"branches, loops and defers",
	Run: run,
}

// guardInfo is one parsed field annotation.
type guardInfo struct {
	mu  string          // sibling field name of the guarding mutex
	sub map[string]bool // non-nil: only these subfield selectors are guarded
}

// lockKey identifies one lock instance: the root object of the selector
// chain that reaches it plus the dotted field path ("mu", "reg.mu").
type lockKey struct {
	root types.Object
	path string
}

// lockMode is the strength of a held lock.
type lockMode int

const (
	modeRead  lockMode = 1
	modeWrite lockMode = 2
)

// lockFact is the must-held lock set. Facts are immutable (the solver
// aliases them); transfer clones before changing.
type lockFact map[lockKey]lockMode

func (f lockFact) clone() lockFact {
	out := make(lockFact, len(f)+1)
	for k, v := range f {
		out[k] = v
	}
	return out
}

func run(pass *framework.Pass) error {
	// No early-out on an annotation-free package: fields of *imported*
	// structs may still be guarded (see foreignGuard).
	c := &checker{
		pass:    pass,
		guards:  collectGuards(pass),
		foreign: map[*types.Var]foreignGuard{},
		files:   map[string]map[int]guardInfo{},
	}
	for _, file := range pass.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd.Body, entryFact(pass, fd))
		}
	}
	return nil
}

// collectGuards parses field annotations into a map from the guarded
// field's *types.Var to its guard.
func collectGuards(pass *framework.Pass) map[*types.Var]guardInfo {
	guards := map[*types.Var]guardInfo{}
	for _, file := range pass.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				gi, ok := parseGuard(fieldComment(field))
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = gi
					}
				}
			}
			return true
		})
	}
	return guards
}

// fieldComment joins a field's doc and trailing line comments.
func fieldComment(f *ast.Field) string {
	var parts []string
	if f.Doc != nil {
		parts = append(parts, f.Doc.Text())
	}
	if f.Comment != nil {
		parts = append(parts, f.Comment.Text())
	}
	return strings.Join(parts, "\n")
}

// parseGuard extracts `guarded by <mu>` / `guarded by <mu> for <F1>, <F2>`
// from a comment.
func parseGuard(text string) (guardInfo, bool) {
	for _, line := range strings.Split(text, "\n") {
		rest, found := strings.CutPrefix(strings.TrimSpace(line), "guarded by ")
		if !found {
			continue
		}
		mu, subs, hasFor := strings.Cut(rest, " for ")
		// The annotation may share its line with ordinary prose — e.g.
		// `// guarded by mu (next slot to overwrite)` — so the mutex name
		// is the first token only, and the sub-field list ends at the
		// first entry that is not a plain identifier.
		muFields := strings.Fields(mu)
		if len(muFields) == 0 {
			continue
		}
		gi := guardInfo{mu: strings.TrimSuffix(muFields[0], ".")}
		if !isIdent(gi.mu) {
			continue
		}
		if hasFor {
			gi.sub = map[string]bool{}
			for _, s := range strings.Split(subs, ",") {
				fields := strings.Fields(s)
				if len(fields) == 0 {
					continue
				}
				name := strings.TrimSuffix(fields[0], ".")
				if !isIdent(name) {
					break
				}
				gi.sub[name] = true
			}
		}
		return gi, true
	}
	return guardInfo{}, false
}

// isIdent reports whether s is a plain Go identifier — the only shape a
// mutex or field name in an annotation can take.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if r == '_' || unicode.IsLetter(r) || (i > 0 && unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return true
}

// entryFact seeds the analysis for fd: empty unless the doc comment says
// `called with <recv>.<mu> held`.
func entryFact(pass *framework.Pass, fd *ast.FuncDecl) lockFact {
	f := lockFact{}
	if fd.Doc == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return f
	}
	recvName := fd.Recv.List[0].Names[0]
	recvObj := pass.TypesInfo.Defs[recvName]
	if recvObj == nil {
		return f
	}
	for _, line := range strings.Split(fd.Doc.Text(), "\n") {
		i := strings.Index(line, "called with ")
		if i < 0 {
			continue
		}
		rest := line[i+len("called with "):]
		spec, _, _ := strings.Cut(rest, " held")
		base, path, ok := strings.Cut(strings.TrimSpace(spec), ".")
		if ok && base == recvName.Name && path != "" {
			f[lockKey{root: recvObj, path: path}] = modeWrite
		}
	}
	return f
}

// checker runs the analysis over one function body (and, recursively, the
// function literals it contains).
type checker struct {
	pass   *framework.Pass
	guards map[*types.Var]guardInfo

	// Cross-package annotation caches: resolved foreign fields (negative
	// results included) and parsed per-file annotation tables keyed by the
	// declaration line of the field name.
	foreign map[*types.Var]foreignGuard
	files   map[string]map[int]guardInfo
}

type foreignGuard struct {
	gi guardInfo
	ok bool
}

// guardOf looks up the annotation guarding field, consulting the current
// package's syntax first and the field's declaring file otherwise.
func (c *checker) guardOf(field *types.Var) (guardInfo, bool) {
	if gi, ok := c.guards[field]; ok {
		return gi, true
	}
	if !field.IsField() || field.Pkg() == nil || field.Pkg() == c.pass.Pkg {
		return guardInfo{}, false
	}
	if fg, ok := c.foreign[field]; ok {
		return fg.gi, fg.ok
	}
	var fg foreignGuard
	if pos := c.pass.Fset.Position(field.Pos()); pos.IsValid() && strings.HasSuffix(pos.Filename, ".go") {
		fg.gi, fg.ok = c.fileGuards(pos.Filename)[pos.Line]
	}
	c.foreign[field] = fg
	return fg.gi, fg.ok
}

// fileGuards parses filename (once) and indexes its struct-field guard
// annotations by the line each field name is declared on. Positions from
// the unified export data point at real source, so this recovers comments
// the type checker never sees. Unreadable or unparseable files yield an
// empty table — the analysis degrades to in-package-only, it never fails.
func (c *checker) fileGuards(filename string) map[int]guardInfo {
	if m, ok := c.files[filename]; ok {
		return m
	}
	m := map[int]guardInfo{}
	c.files[filename] = m
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return m
	}
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			gi, ok := parseGuard(fieldComment(field))
			if !ok {
				continue
			}
			for _, name := range field.Names {
				m[fset.Position(name.Pos()).Line] = gi
			}
		}
		return true
	})
	return m
}

// lockAnalysis adapts lockFact to the cfg solver.
type lockAnalysis struct {
	c     *checker
	entry lockFact
}

func (a lockAnalysis) EntryFact() cfg.Fact { return a.entry }

func (a lockAnalysis) Transfer(f cfg.Fact, n ast.Node) cfg.Fact {
	set := f.(lockFact)
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		// A deferred Unlock runs at function exit, not here: the lock
		// stays held on every path past this statement. Deferred Locks
		// would be bugs; neither mutates the fact.
		return set
	}
	out := set
	cfg.Walk(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // closures are their own functions
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, mode, unlock, ok := a.c.lockEvent(call)
		if !ok {
			return true
		}
		out = out.clone()
		if unlock {
			delete(out, key)
		} else {
			out[key] = mode
		}
		return true
	})
	return out
}

func (a lockAnalysis) Merge(x, y cfg.Fact) cfg.Fact {
	xs, ys := x.(lockFact), y.(lockFact)
	out := lockFact{}
	for k, mx := range xs {
		if my, ok := ys[k]; ok {
			m := mx
			if my < m {
				m = my
			}
			out[k] = m
		}
	}
	return out
}

func (a lockAnalysis) Equal(x, y cfg.Fact) bool {
	xs, ys := x.(lockFact), y.(lockFact)
	if len(xs) != len(ys) {
		return false
	}
	for k, v := range xs {
		if ys[k] != v {
			return false
		}
	}
	return true
}

// lockEvent classifies call as a Lock/RLock/Unlock/RUnlock on a
// sync.Mutex/RWMutex reached through a flattenable selector chain.
func (c *checker) lockEvent(call *ast.CallExpr) (key lockKey, mode lockMode, unlock, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return key, 0, false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		mode = modeWrite
	case "RLock":
		mode = modeRead
	case "Unlock", "RUnlock":
		unlock = true
	default:
		return key, 0, false, false
	}
	fn, _ := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return key, 0, false, false
	}
	key, ok = c.flatten(sel.X)
	return key, mode, unlock, ok
}

// flatten resolves an ident/selector chain (`q.mu`, `s.reg.mu`) to a
// lockKey; ok is false for anything else (calls, index expressions).
func (c *checker) flatten(e ast.Expr) (lockKey, bool) {
	root, path, ok := framework.Chain(c.pass.TypesInfo, e)
	if !ok {
		return lockKey{}, false
	}
	return lockKey{root: root, path: path}, true
}

// checkFunc solves the lock analysis over body and reports guarded-field
// accesses not covered by their mutex. Function literals found inside are
// checked recursively with empty entry facts.
func (c *checker) checkFunc(body *ast.BlockStmt, entry lockFact) {
	g := cfg.New(body)
	res := cfg.Solve(g, lockAnalysis{c: c, entry: entry})
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			before, reachable := res.Before(n)
			if !reachable {
				continue
			}
			c.checkNode(n, before.(lockFact))
		}
	}
	// Closures: own graphs, no inherited locks.
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			c.checkFunc(fl.Body, lockFact{})
			return false
		}
		return true
	})
}

// checkNode scans one graph node for guarded accesses under the fact that
// holds immediately before it.
func (c *checker) checkNode(n ast.Node, held lockFact) {
	if c.pass.InTestFile(n.Pos()) {
		return
	}
	writes := writeTargets(n)
	cfg.Walk(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // checked separately by checkFunc
		case *ast.CompositeLit:
			return false // construction precedes sharing
		case *ast.SelectorExpr:
			c.checkSelector(x, held, writes)
		}
		return true
	})
}

// checkSelector reports sel if it accesses a guarded field without the
// required lock mode.
func (c *checker) checkSelector(sel *ast.SelectorExpr, held lockFact, writes map[ast.Expr]bool) {
	field, _ := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if field == nil {
		return
	}
	gi, guarded := c.guardOf(field)
	isSub := false
	if !guarded || gi.sub != nil {
		// In the `for` form the guarded access is the enclosing
		// subfield selector, handled here when we see it.
		if !c.subfieldAccess(sel, &gi, &field) {
			return
		}
		isSub = true
	}
	// Access expression whose write/read-ness we classify: the outermost
	// selector involved (the subfield one in the `for` form).
	need := modeRead
	what := "read"
	if writes[ast.Expr(sel)] {
		need = modeWrite
		what = "write"
	}
	// The guard mutex is a sibling of the annotated field: for x.y.f
	// (plain form on f) it is x.y.mu, for h.Stats.EvalTime (subfield
	// form on Stats) it is h.statsMu.
	base := sel.X
	if isSub {
		base = ast.Unparen(sel.X).(*ast.SelectorExpr).X
	}
	key, ok := c.flatten(base)
	if !ok {
		c.pass.Reportf(sel.Pos(),
			"access to %s-guarded field %s through an expression the analysis cannot tie to a lock; hold %s via a named variable",
			gi.mu, sel.Sel.Name, gi.mu)
		return
	}
	key.path = joinPath(key.path, gi.mu)
	if m := held[key]; m >= need {
		return
	}
	c.pass.Reportf(sel.Pos(),
		"%s of %s without holding %s (field is marked `guarded by %s`)",
		what, sel.Sel.Name, gi.mu, gi.mu)
}

// subfieldAccess rewrites (sel, gi, field) when sel is the subfield
// selector of a `guarded by <mu> for ...` annotation: sel.X must itself
// select the annotated field and sel.Sel must be in the list.
func (c *checker) subfieldAccess(sel *ast.SelectorExpr, gi *guardInfo, field **types.Var) bool {
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	innerField, _ := c.pass.TypesInfo.Uses[inner.Sel].(*types.Var)
	if innerField == nil {
		return false
	}
	igi, ok := c.guardOf(innerField)
	if !ok || igi.sub == nil || !igi.sub[sel.Sel.Name] {
		return false
	}
	*gi, *field = igi, innerField
	return true
}

func joinPath(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "." + name
}

// writeTargets collects the expressions written by node n: assignment
// left-hand sides, ++/-- operands, the map operand of delete, and the
// base of a map-index store. Taking a field's address (&x.f) outside a
// sync/atomic call argument also counts as a write — the pointer escapes
// the locked region.
func writeTargets(n ast.Node) map[ast.Expr]bool {
	w := map[ast.Expr]bool{}
	mark := func(e ast.Expr) {
		e = ast.Unparen(e)
		w[e] = true
		// A store through an index/slice of a field mutates the field's
		// referent: r.ops[k] = v writes the map held in r.ops.
		for {
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = ast.Unparen(x.X)
			case *ast.SliceExpr:
				e = ast.Unparen(x.X)
			case *ast.StarExpr:
				e = ast.Unparen(x.X)
			default:
				w[e] = true
				return
			}
			w[e] = true
		}
	}
	cfg.Walk(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				mark(x.X)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" && len(x.Args) > 0 {
				mark(x.Args[0])
			}
		}
		return true
	})
	return w
}
