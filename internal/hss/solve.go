package hss

import (
	"context"
	"fmt"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/tree"
	"gofmm/internal/workspace"
)

// Factorization is a direct solver for the compressed operator K̃ — the
// "hierarchical matrix factorization" the paper defers to future work
// (§5: "Our future work will focus on ... the hierarchical matrix
// factorization based on our method"). It performs a recursive Schur
// elimination through the skeleton hierarchy (the extended-sparse-system
// view of ULV-type HSS solvers): each leaf contributes
//
//	S_τ = E_τᵀ D_τ⁻¹ E_τ,
//
// each interior node solves the small coupled system
//
//	M = I + [0 B; Bᵀ 0]·diag(S_l, S_r)
//
// and propagates S_α = E_αᵀ diag(S)·M⁻¹·E_α upward; the downward sweep
// recovers the skeleton potentials and finally x = D⁻¹(b − E·y) per leaf.
// Cost is O(N·s²) after compression.
type Factorization struct {
	h *HSS
	// Per-leaf Cholesky factor of D.
	chol []*linalg.Matrix
	// Per-node reduced Schur complement S and the LU of the coupled system.
	schur []*linalg.Matrix
	lu    []*linalg.LU
	luRt  *linalg.LU // root coupled system

	// Jitter is the largest diagonal regularization λ that had to be added
	// to recover a failed factorization (0 when everything factored clean);
	// RegularizedNodes counts the nodes that needed it. A nonzero Jitter
	// means Solve targets K̃ + λI rather than K̃ on those blocks — graceful
	// degradation, recorded so the caller can judge the perturbation.
	Jitter           float64
	RegularizedNodes int
}

// factorRetries is the escalation budget: λ starts at ~1e-12·avg(diag) and
// multiplies by 100 per attempt, so the last attempt is a perturbation of
// roughly 1e-2·avg(diag).
const factorRetries = 6

// jitteredDiag returns a copy of A with λ added to the diagonal.
func jitteredDiag(A *linalg.Matrix, lam float64) *linalg.Matrix {
	J := A.Clone()
	for i := 0; i < J.Rows && i < J.Cols; i++ {
		J.Add(i, i, lam)
	}
	return J
}

// baseJitter picks the starting regularization from the magnitude of A's
// diagonal so the escalation is scale-invariant.
func baseJitter(A *linalg.Matrix) float64 {
	n := min(A.Rows, A.Cols)
	if n == 0 {
		return 1e-12
	}
	var avg float64
	for i := 0; i < n; i++ {
		v := A.At(i, i)
		if v < 0 {
			v = -v
		}
		avg += v
	}
	avg /= float64(n)
	if avg == 0 {
		return 1e-12
	}
	return 1e-12 * avg
}

// recordJitter folds one recovered factorization into the degradation stats.
func (f *Factorization) recordJitter(lam float64) {
	if lam <= 0 {
		return
	}
	f.RegularizedNodes++
	if lam > f.Jitter {
		f.Jitter = lam
	}
}

// cholJittered factors D, retrying with escalating diagonal regularization
// when D is not numerically SPD (compression error can push small
// eigenvalues negative). Returns the factor and the λ that was needed.
func cholJittered(D *linalg.Matrix) (*linalg.Matrix, float64, error) {
	L, err := linalg.Cholesky(D)
	if err == nil {
		return L, 0, nil
	}
	lam := baseJitter(D)
	for k := 0; k < factorRetries; k++ {
		if L, jerr := linalg.Cholesky(jitteredDiag(D, lam)); jerr == nil {
			return L, lam, nil
		}
		lam *= 100
	}
	return nil, 0, err
}

// luJittered factors M, retrying with escalating diagonal regularization
// when M is numerically singular.
func luJittered(M *linalg.Matrix) (*linalg.LU, float64, error) {
	lu, err := linalg.LUFactor(M)
	if err == nil {
		return lu, 0, nil
	}
	lam := baseJitter(M)
	for k := 0; k < factorRetries; k++ {
		if lu, jerr := linalg.LUFactor(jitteredDiag(M, lam)); jerr == nil {
			return lu, lam, nil
		}
		lam *= 100
	}
	return nil, 0, err
}

// Factor builds the direct solver. A leaf diagonal block that is not
// numerically positive definite (K̃ can lose definiteness when the
// compression error is large — a limitation the paper notes) is retried
// with escalating diagonal regularization; Factor fails only when even the
// largest jitter cannot rescue the block. The applied perturbation is
// reported in Factorization.Jitter/RegularizedNodes and telemetry.
func (h *HSS) Factor() (*Factorization, error) {
	return h.FactorCtx(context.Background())
}

// FactorCtx is Factor with cancellation (checked at every tree node).
func (h *HSS) FactorCtx(ctx context.Context) (*Factorization, error) {
	defer h.Telemetry.StartSpan("hss.factor").End()
	t := h.Tree
	// Transient per-node scratch (D⁻¹E, the coupled system, M⁻¹E, diag(S)·X)
	// comes from the workspace pool when one is configured; the persisted
	// factors (chol, schur, lu) never do — LUFactor and MatMul allocate their
	// own storage.
	sc := h.Workspace.NewScope()
	defer sc.Release()
	f := &Factorization{
		h:     h,
		chol:  make([]*linalg.Matrix, len(t.Nodes)),
		schur: make([]*linalg.Matrix, len(t.Nodes)),
		lu:    make([]*linalg.LU, len(t.Nodes)),
	}
	var err error
	t.PostOrder(func(nd *tree.Node) {
		if err != nil {
			return
		}
		if err = resilience.FromContext(ctx); err != nil {
			return
		}
		id := nd.ID
		if t.IsLeaf(id) {
			if id == 0 {
				// Single-leaf tree: plain dense Cholesky.
				var lam float64
				f.chol[0], lam, err = cholJittered(h.nodes[0].D)
				f.recordJitter(lam)
				return
			}
			L, lam, cerr := cholJittered(h.nodes[id].D)
			if cerr != nil {
				err = fmt.Errorf("hss: leaf %d: %w", id, cerr)
				return
			}
			f.recordJitter(lam)
			f.chol[id] = L
			// S = Eᵀ D⁻¹ E.
			E := h.nodes[id].E
			DinvE := cloneInto(sc, E)
			linalg.CholSolve(L, DinvE)
			f.schur[id] = linalg.MatMul(true, false, E, DinvE)
			return
		}
		l, r := t.Left(id), t.Right(id)
		sl, sr := f.schur[l], f.schur[r]
		M := coupledSystem(sc, h.nodes[id].B, sl, sr)
		lu, lam, lerr := luJittered(M)
		if lerr != nil {
			err = fmt.Errorf("hss: node %d reduced system: %w", id, lerr)
			return
		}
		f.recordJitter(lam)
		if id == 0 {
			f.luRt = lu
			return
		}
		f.lu[id] = lu
		// S_α = E_αᵀ · diag(S) · M⁻¹ · E_α.
		E := h.nodes[id].E
		MinvE := cloneInto(sc, E)
		lu.Solve(MinvE)
		DS := applyDiagSchur(sc, sl, sr, MinvE)
		f.schur[id] = linalg.MatMul(true, false, E, DS)
	})
	if err != nil {
		return nil, err
	}
	if rec := h.Telemetry; rec != nil && f.RegularizedNodes > 0 {
		rec.Counter("hss.factor.regularized_nodes").Add(int64(f.RegularizedNodes))
		rec.Gauge("hss.factor.jitter").Set(f.Jitter)
	}
	return f, nil
}

// cloneInto copies A into a scope-owned scratch matrix (A stays untouched).
func cloneInto(sc *workspace.Scope, A *linalg.Matrix) *linalg.Matrix {
	out := sc.Matrix(A.Rows, A.Cols)
	out.CopyFrom(A)
	return out
}

// coupledSystem forms M = I + [0 B; Bᵀ 0]·diag(S_l, S_r) in scope scratch
// (its LU factorization clones it, so M itself is transient).
func coupledSystem(sc *workspace.Scope, B, sl, sr *linalg.Matrix) *linalg.Matrix {
	nl, nr := sl.Rows, sr.Rows
	M := sc.Matrix(nl+nr, nl+nr)
	for i := 0; i < nl+nr; i++ {
		M.Set(i, i, 1)
	}
	if nl > 0 && nr > 0 {
		// Top-right block: B·S_r; bottom-left: Bᵀ·S_l.
		tr := M.View(0, nl, nl, nr)
		linalg.Gemm(false, false, 1, B, sr, 1, tr)
		bl := M.View(nl, 0, nr, nl)
		linalg.Gemm(true, false, 1, B, sl, 1, bl)
	}
	return M
}

// applyDiagSchur returns diag(S_l, S_r)·X for X with S_l.Rows+S_r.Rows rows,
// in scope scratch.
func applyDiagSchur(sc *workspace.Scope, sl, sr, X *linalg.Matrix) *linalg.Matrix {
	out := sc.Matrix(X.Rows, X.Cols)
	nl := sl.Rows
	if nl > 0 {
		linalg.Gemm(false, false, 1, sl, X.View(0, 0, nl, X.Cols), 0, out.View(0, 0, nl, X.Cols))
	}
	if sr.Rows > 0 {
		linalg.Gemm(false, false, 1, sr, X.View(nl, 0, sr.Rows, X.Cols), 0, out.View(nl, 0, sr.Rows, X.Cols))
	}
	return out
}

// Solve returns x with K̃·x = B (multiple right-hand sides supported: both
// sweeps process all of B's columns as one block, so a multi-column solve
// amortizes every small factor application the same way Matmat amortizes
// the evaluation passes). The returned matrix is always freshly allocated;
// all intermediate sweeps draw from the workspace pool when one is
// configured. Solve is the legacy uncancellable entry point; it panics on
// the errors SolveCtx would return.
func (f *Factorization) Solve(B *linalg.Matrix) *linalg.Matrix {
	X, err := f.SolveCtx(context.Background(), B)
	if err != nil {
		panic(err)
	}
	return X
}

// SolveCtx is Solve with cancellation (checked at every tree node of both
// sweeps) and typed errors for invalid input.
func (f *Factorization) SolveCtx(ctx context.Context, B *linalg.Matrix) (*linalg.Matrix, error) {
	h := f.h
	if B == nil {
		return nil, fmt.Errorf("%w: hss: Solve right-hand side is nil", resilience.ErrInvalidInput)
	}
	if B.Rows != h.n {
		return nil, fmt.Errorf("%w: hss: Solve with %d rows, matrix dim %d",
			resilience.ErrInvalidInput, B.Rows, h.n)
	}
	defer h.Telemetry.StartSpan("hss.solve").End()
	t := h.Tree
	sc := h.Workspace.NewScope()
	defer sc.Release()
	if h.Perm != nil {
		Bp := sc.Matrix(B.Rows, B.Cols)
		B.RowsGatherInto(h.Perm, Bp)
		B = Bp
	}
	r := B.Cols
	if t.IsLeaf(0) {
		X := B.Clone()
		linalg.CholSolve(f.chol[0], X)
		if h.IPerm != nil {
			X = X.RowsGather(h.IPerm)
		}
		return X, nil
	}
	// Upward sweep: g_τ = Eᵀ D⁻¹ b (leaf);
	// g_α = E_αᵀ (I − diag(S)·M⁻¹·C) g_lr (interior).
	var err error
	g := make([]*linalg.Matrix, len(t.Nodes))
	dinvB := make([]*linalg.Matrix, len(t.Nodes)) // leaf D⁻¹ b, reused later
	t.PostOrder(func(nd *tree.Node) {
		id := nd.ID
		if id == 0 || err != nil {
			return
		}
		if err = resilience.FromContext(ctx); err != nil {
			return
		}
		E := h.nodes[id].E
		if t.IsLeaf(id) {
			xb := cloneInto(sc, B.View(nd.Lo, 0, nd.Size(), r))
			linalg.CholSolve(f.chol[id], xb)
			dinvB[id] = xb
			g[id] = linalg.MatMul(true, false, E, xb)
			return
		}
		l, rr := t.Left(id), t.Right(id)
		glr := stack(sc, g[l], g[rr])
		red := f.reduceDown(sc, id, glr) // M⁻¹·C·g_lr
		ds := applyDiagSchur(sc, f.schur[l], f.schur[rr], red)
		tmp := cloneInto(sc, glr)
		tmp.AddScaled(-1, ds)
		g[id] = linalg.MatMul(true, false, E, tmp)
	})
	if err != nil {
		return nil, err
	}
	// Downward sweep: y_lr = M⁻¹ (C·g_lr + E_α·y_α).
	y := make([]*linalg.Matrix, len(t.Nodes))
	t.PreOrder(func(nd *tree.Node) {
		id := nd.ID
		if t.IsLeaf(id) || err != nil {
			return
		}
		if err = resilience.FromContext(ctx); err != nil {
			return
		}
		l, rr := t.Left(id), t.Right(id)
		glr := stack(sc, g[l], g[rr])
		rhs := applyCoupling(sc, h.nodes[id].B, glr)
		if id != 0 && y[id] != nil {
			linalg.Gemm(false, false, 1, h.nodes[id].E, y[id], 1, rhs)
		}
		if id == 0 {
			f.luRt.Solve(rhs)
		} else {
			f.lu[id].Solve(rhs)
		}
		nl := g[l].Rows
		y[l] = cloneInto(sc, rhs.View(0, 0, nl, r))
		y[rr] = cloneInto(sc, rhs.View(nl, 0, rhs.Rows-nl, r))
	})
	if err != nil {
		return nil, err
	}
	// Leaves: x = D⁻¹(b − E·y) = D⁻¹b − D⁻¹E·y.
	X := linalg.NewMatrix(B.Rows, r)
	for _, leaf := range t.Leaves() {
		nd := &t.Nodes[leaf]
		xv := X.View(nd.Lo, 0, nd.Size(), r)
		xv.CopyFrom(dinvB[leaf])
		if y[leaf] != nil && y[leaf].Rows > 0 {
			Ey := linalg.MatMul(false, false, h.nodes[leaf].E, y[leaf])
			linalg.CholSolve(f.chol[leaf], Ey)
			xv.AddScaled(-1, Ey)
		}
	}
	if h.IPerm != nil {
		X = X.RowsGather(h.IPerm)
	}
	return X, nil
}

// reduceDown computes M⁻¹·C·g for node id.
func (f *Factorization) reduceDown(sc *workspace.Scope, id int, glr *linalg.Matrix) *linalg.Matrix {
	rhs := applyCoupling(sc, f.h.nodes[id].B, glr)
	if id == 0 {
		f.luRt.Solve(rhs)
	} else {
		f.lu[id].Solve(rhs)
	}
	return rhs
}

// applyCoupling computes C·g with C = [0 B; Bᵀ 0] where the split point is
// B.Rows, in scope scratch.
func applyCoupling(sc *workspace.Scope, B, glr *linalg.Matrix) *linalg.Matrix {
	nl := B.Rows
	nr := glr.Rows - nl
	out := sc.Matrix(glr.Rows, glr.Cols)
	if nl > 0 && nr > 0 {
		linalg.Gemm(false, false, 1, B, glr.View(nl, 0, nr, glr.Cols), 0, out.View(0, 0, nl, glr.Cols))
		linalg.Gemm(true, false, 1, B, glr.View(0, 0, nl, glr.Cols), 0, out.View(nl, 0, nr, glr.Cols))
	}
	return out
}

// stack returns [a; b] in scope scratch.
func stack(sc *workspace.Scope, a, b *linalg.Matrix) *linalg.Matrix {
	out := sc.Matrix(a.Rows+b.Rows, a.Cols)
	if a.Rows > 0 {
		out.View(0, 0, a.Rows, a.Cols).CopyFrom(a)
	}
	if b.Rows > 0 {
		out.View(a.Rows, 0, b.Rows, b.Cols).CopyFrom(b)
	}
	return out
}

// LogDet returns log det(K̃), assembled from the factorization via the
// matrix determinant lemma applied recursively:
//
//	det(K̃) = Π_leaves det(D_τ) · Π_interior det(I + C·diag(S_l, S_r)),
//
// the Gaussian-process-likelihood workload that makes hierarchical
// factorizations valuable (log-marginal likelihood needs both K⁻¹y and
// log det K).
func (f *Factorization) LogDet() float64 {
	h := f.h
	t := h.Tree
	var logdet float64
	for _, leaf := range t.Leaves() {
		logdet += linalg.LogDetFromCholesky(f.chol[leaf])
	}
	for id := range t.Nodes {
		if t.IsLeaf(id) {
			continue
		}
		var lu *linalg.LU
		if id == 0 {
			lu = f.luRt
		} else {
			lu = f.lu[id]
		}
		la, _ := lu.LogAbsDet()
		logdet += la
	}
	return logdet
}
