// Gaussian-process log-marginal likelihood through the hierarchical
// factorization: both terms of
//
//	log p(y) = −½ yᵀ(K+σ²I)⁻¹y − ½ log det(K+σ²I) − (n/2) log 2π
//
// come from the compressed operator — the solve from Factorization.Solve
// and the determinant from Factorization.LogDet — making GP model selection
// (bandwidth sweeps) feasible without ever forming K densely. This is the
// statistical-inference workload the paper's introduction motivates.
//
//	go run ./examples/gplikelihood [-n 2048]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"gofmm"
	"gofmm/testmat"
)

func main() {
	n := flag.Int("n", 2048, "training points")
	noise := flag.Float64("noise", 0.1, "observation noise σ")
	flag.Parse()
	log.SetFlags(0)

	// Synthetic 2-D dataset; targets from a smooth latent function.
	rng := rand.New(rand.NewSource(5))
	X := gofmm.NewMatrix(2, *n)
	for j := 0; j < *n; j++ {
		X.Set(0, j, rng.NormFloat64())
		X.Set(1, j, rng.NormFloat64())
	}
	y := gofmm.NewMatrix(*n, 1)
	for i := 0; i < *n; i++ {
		y.Set(i, 0, math.Sin(2*X.At(0, i))*math.Cos(X.At(1, i))+*noise*rng.NormFloat64())
	}
	fmt.Printf("GP log-marginal likelihood over %d points, σ = %g\n", *n, *noise)
	fmt.Printf("%-12s %-14s %-12s %-12s\n", "bandwidth", "log p(y)", "compress(s)", "factor(s)")

	best, bestH := math.Inf(-1), 0.0
	for _, h := range []float64{0.25, 0.5, 1.0, 2.0} {
		K := testmat.NewGaussKernel(X, h, *noise**noise)
		t0 := time.Now()
		H, err := gofmm.Compress(K, gofmm.Config{
			LeafSize: 128, MaxRank: 128, Tol: 1e-8, Budget: 0,
			Distance: gofmm.Geometric, Points: X,
			Exec: gofmm.Dynamic, NumWorkers: 2, CacheBlocks: true, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		compressS := time.Since(t0).Seconds()
		t0 = time.Now()
		F, err := gofmm.Factor(H)
		if err != nil {
			log.Fatal(err)
		}
		factorS := time.Since(t0).Seconds()
		alpha := F.Solve(y)
		var quad float64
		for i, v := range y.Col(0) {
			quad += v * alpha.At(i, 0)
		}
		ll := -0.5*quad - 0.5*F.LogDet() - 0.5*float64(*n)*math.Log(2*math.Pi)
		fmt.Printf("%-12g %-14.2f %-12.3f %-12.3f\n", h, ll, compressS, factorS)
		if ll > best {
			best, bestH = ll, h
		}
	}
	fmt.Printf("selected bandwidth h = %g (highest marginal likelihood)\n", bestH)
}
