package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// Kernel conformance suite: every GEMM/TRSM variant is checked against a
// naive triple-loop reference over a grid of adversarial shapes (empty
// dimensions, single rows/columns, tall-skinny, fat-short, sizes straddling
// the micro-tile and the packed-path threshold) and over strided submatrix
// views. Run under -race this also exercises the parallel macro-block path.

// refGemm is the ~20-line reference: C = alpha*op(A)*op(B) + beta*C.
func refGemm(transA, transB bool, alpha float64, A, B *Matrix, beta float64, C *Matrix) {
	opA := func(i, k int) float64 { return A.At(i, k) }
	if transA {
		opA = func(i, k int) float64 { return A.At(k, i) }
	}
	opB := func(k, j int) float64 { return B.At(k, j) }
	if transB {
		opB = func(k, j int) float64 { return B.At(j, k) }
	}
	k := A.Cols
	if transA {
		k = A.Rows
	}
	for j := 0; j < C.Cols; j++ {
		for i := 0; i < C.Rows; i++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += opA(i, kk) * opB(kk, j)
			}
			C.Set(i, j, alpha*s+beta*C.At(i, j))
		}
	}
}

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	M := NewMatrix(r, c)
	for i := range M.Data {
		M.Data[i] = rng.NormFloat64()
	}
	return M
}

// maxAbsDiff returns max |X[i,j] - Y[i,j]|.
func maxAbsDiff(X, Y *Matrix) float64 {
	d := 0.0
	for j := 0; j < X.Cols; j++ {
		for i := 0; i < X.Rows; i++ {
			d = math.Max(d, math.Abs(X.At(i, j)-Y.At(i, j)))
		}
	}
	return d
}

// gemmShapes is the (m, n, k) grid. It deliberately includes shapes that are
// 0 in some dimension, below/above the micro-tile (8×6), non-multiples of
// the tile, and large enough to cross the packed-path threshold.
var gemmShapes = [][3]int{
	{0, 5, 3}, {5, 0, 3}, {5, 3, 0}, {0, 0, 0},
	{1, 1, 1}, {1, 7, 5}, {7, 1, 5}, {7, 5, 1},
	{3, 3, 3}, {8, 6, 4}, {9, 7, 5}, {16, 12, 8},
	{130, 3, 2}, {2, 130, 3}, {200, 5, 64}, {5, 200, 64},
	{64, 64, 64}, {65, 61, 37}, {96, 96, 96}, {128, 48, 300},
	{257, 131, 67},
}

func TestGemmConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range gemmShapes {
		m, n, k := sh[0], sh[1], sh[2]
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				for _, ab := range [][2]float64{{1, 0}, {1, 1}, {-0.5, 0.25}, {2, -1}, {0, 0.5}} {
					alpha, beta := ab[0], ab[1]
					name := fmt.Sprintf("m%d_n%d_k%d_tA%v_tB%v_a%g_b%g", m, n, k, transA, transB, alpha, beta)
					t.Run(name, func(t *testing.T) {
						A := randMatrix(rng, m, k)
						if transA {
							A = randMatrix(rng, k, m)
						}
						B := randMatrix(rng, k, n)
						if transB {
							B = randMatrix(rng, n, k)
						}
						C := randMatrix(rng, m, n)
						want := C.Clone()
						refGemm(transA, transB, alpha, A, B, beta, want)
						Gemm(transA, transB, alpha, A, B, beta, C)
						// k accumulated products, each O(1) magnitude.
						tol := 1e-13 * float64(k+1) * math.Max(1, math.Abs(alpha))
						if d := maxAbsDiff(C, want); d > tol {
							t.Fatalf("Gemm deviates from reference by %g (tol %g)", d, tol)
						}
					})
				}
			}
		}
	}
}

// TestGemmConformanceStrided runs the same check through submatrix views, so
// Stride > Rows on every operand.
func TestGemmConformanceStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	shapes := [][3]int{{5, 3, 4}, {9, 7, 5}, {65, 61, 37}, {130, 9, 40}}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				name := fmt.Sprintf("m%d_n%d_k%d_tA%v_tB%v", m, n, k, transA, transB)
				t.Run(name, func(t *testing.T) {
					ar, ac := m, k
					if transA {
						ar, ac = k, m
					}
					br, bc := k, n
					if transB {
						br, bc = n, k
					}
					Abig := randMatrix(rng, ar+3, ac+2)
					Bbig := randMatrix(rng, br+5, bc+1)
					Cbig := randMatrix(rng, m+2, n+4)
					A := Abig.View(2, 1, ar, ac)
					B := Bbig.View(3, 0, br, bc)
					C := Cbig.View(1, 2, m, n)
					want := C.Clone()
					refGemm(transA, transB, 1.5, A, B, -0.5, want)
					Gemm(transA, transB, 1.5, A, B, -0.5, C)
					tol := 1e-13 * float64(k+1) * 1.5
					if d := maxAbsDiff(C, want); d > tol {
						t.Fatalf("strided Gemm deviates from reference by %g (tol %g)", d, tol)
					}
				})
			}
		}
	}
}

// refTrsm solves op(T)·X = B by explicit forward/back substitution, one
// column at a time, straight from the textbook formulas.
func refTrsm(upper, trans bool, T, B *Matrix) {
	n := B.Rows
	// Effective matrix M = op(T) restricted to the leading n×n triangle.
	at := func(i, k int) float64 {
		if trans {
			i, k = k, i
		}
		if upper && k < i || !upper && k > i {
			return 0
		}
		return T.At(i, k)
	}
	lowerSolve := upper == trans // op flips the triangle orientation
	for j := 0; j < B.Cols; j++ {
		x := B.Col(j)
		if lowerSolve {
			for i := 0; i < n; i++ {
				s := x[i]
				for kk := 0; kk < i; kk++ {
					s -= at(i, kk) * x[kk]
				}
				x[i] = s / at(i, i)
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				s := x[i]
				for kk := i + 1; kk < n; kk++ {
					s -= at(i, kk) * x[kk]
				}
				x[i] = s / at(i, i)
			}
		}
	}
}

// randTriangular returns a well-conditioned n×n triangular matrix (unit-ish
// diagonal, small off-diagonal entries) embedded in an r×r matrix, r ≥ n.
func randTriangular(rng *rand.Rand, upper bool, r, n int) *Matrix {
	T := randMatrix(rng, r, r)
	for i := 0; i < n; i++ {
		T.Set(i, i, 1+0.1*rng.Float64())
		for k := 0; k < n; k++ {
			if upper && k < i || !upper && k > i {
				T.Set(i, k, 0)
			} else if k != i {
				T.Set(i, k, 0.3*T.At(i, k))
			}
		}
	}
	return T
}

func TestTrsmConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	// (n, nrhs) grid: empty, single, tile edges, parallel-path sizes.
	shapes := [][2]int{
		{0, 3}, {1, 1}, {1, 9}, {3, 1}, {5, 4}, {7, 6},
		{8, 8}, {13, 5}, {32, 3}, {64, 33}, {65, 40}, {40, 130},
	}
	for _, sh := range shapes {
		n, nrhs := sh[0], sh[1]
		for _, upper := range []bool{true, false} {
			for _, trans := range []bool{false, true} {
				name := fmt.Sprintf("n%d_rhs%d_upper%v_trans%v", n, nrhs, upper, trans)
				t.Run(name, func(t *testing.T) {
					T := randTriangular(rng, upper, n+2, n) // triangle larger than B.Rows
					B := randMatrix(rng, n, nrhs)
					want := B.Clone()
					refTrsm(upper, trans, T, want)
					if upper {
						TrsmLeftUpper(trans, T, B)
					} else {
						TrsmLeftLower(trans, T, B)
					}
					tol := 1e-12 * float64(n+1)
					if d := maxAbsDiff(B, want); d > tol {
						t.Fatalf("Trsm deviates from reference by %g (tol %g)", d, tol)
					}
				})
			}
		}
	}
}

// TestTrsmSolvesSystem closes the loop: X = op(T)⁻¹B must satisfy
// op(T)·X ≈ B through an independent Gemm.
func TestTrsmSolvesSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, upper := range []bool{true, false} {
		for _, trans := range []bool{false, true} {
			n, nrhs := 48, 7
			T := randTriangular(rng, upper, n, n)
			B := randMatrix(rng, n, nrhs)
			X := B.Clone()
			if upper {
				TrsmLeftUpper(trans, T, X)
			} else {
				TrsmLeftLower(trans, T, X)
			}
			got := NewMatrix(n, nrhs)
			Gemm(trans, false, 1, T, X, 0, got)
			if d := maxAbsDiff(got, B); d > 1e-10 {
				t.Fatalf("upper=%v trans=%v: op(T)·X differs from B by %g", upper, trans, d)
			}
		}
	}
}

// TestGemmConformanceParallel forces GOMAXPROCS up so the goroutine-parallel
// macro-block path runs even on single-core CI, then checks a shape large
// enough to span several mc blocks. Under -race this is the data-race guard
// for the packed driver.
func TestGemmConformanceParallel(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(47))
	for _, sh := range [][3]int{{400, 96, 64}, {513, 130, 70}} {
		m, n, k := sh[0], sh[1], sh[2]
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				A := randMatrix(rng, m, k)
				if transA {
					A = randMatrix(rng, k, m)
				}
				B := randMatrix(rng, k, n)
				if transB {
					B = randMatrix(rng, n, k)
				}
				C := NewMatrix(m, n)
				want := NewMatrix(m, n)
				refGemm(transA, transB, 1, A, B, 0, want)
				Gemm(transA, transB, 1, A, B, 0, C)
				tol := 1e-13 * float64(k+1)
				if d := maxAbsDiff(C, want); d > tol {
					t.Fatalf("parallel Gemm m=%d n=%d k=%d tA=%v tB=%v off by %g", m, n, k, transA, transB, d)
				}
			}
		}
	}
}

// TestGemmAccumulatesIntoViews guards the in-place convention used all over
// the evaluator: writing through a view must only touch the viewed window.
func TestGemmAccumulatesIntoViews(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	big := randMatrix(rng, 20, 20)
	orig := big.Clone()
	A := randMatrix(rng, 6, 9)
	B := randMatrix(rng, 9, 5)
	C := big.View(4, 3, 6, 5)
	want := C.Clone()
	refGemm(false, false, 1, A, B, 1, want)
	Gemm(false, false, 1, A, B, 1, C)
	if d := maxAbsDiff(C, want); d > 1e-12 {
		t.Fatalf("view Gemm off by %g", d)
	}
	for j := 0; j < 20; j++ {
		for i := 0; i < 20; i++ {
			inside := i >= 4 && i < 10 && j >= 3 && j < 8
			if !inside && big.At(i, j) != orig.At(i, j) {
				t.Fatalf("Gemm wrote outside the view at (%d,%d)", i, j)
			}
		}
	}
}
