package spdmat

import (
	"fmt"
	"math"
	"math/rand"

	"gofmm/internal/linalg"
)

// Pseudo-spectral operators (K15–K17): A = D_c + Fᵀ·D_k·F where F is the
// orthonormal DCT-II matrix (the discrete spectral transform), D_k the
// diagonal symbol of a variable-coefficient differential operator and D_c a
// positive spatial field. The variable coefficients make the symbol *rough*
// (modelled by a random multiplicative perturbation of the smooth |k|^p
// trend), so the off-diagonal blocks of Fᵀ·D_k·F carry slowly decaying
// singular values — which is exactly why the paper finds K15–K17 hard to
// compress at practical ranks (Figure 5's red labels). A is SPD as the sum
// of two SPD terms.

// dctMatrix returns the orthonormal DCT-II matrix of size n.
func dctMatrix(n int) *linalg.Matrix {
	F := linalg.NewMatrix(n, n)
	for k := 0; k < n; k++ {
		scale := math.Sqrt(2.0 / float64(n))
		if k == 0 {
			scale = math.Sqrt(1.0 / float64(n))
		}
		for j := 0; j < n; j++ {
			F.Set(k, j, scale*math.Cos(math.Pi*float64(k)*(float64(j)+0.5)/float64(n)))
		}
	}
	return F
}

// pseudoSpectral builds A = D_c + Fᵀ D_k F (optionally inverted).
func pseudoSpectral(name string, n int, symbol func(frac float64) float64,
	coeff func(frac float64) float64, invert bool) (*Problem, error) {
	F := dctMatrix(n)
	// FD = Dk·F, A = Fᵀ·FD + Dc.
	FD := F.Clone()
	for k := 0; k < n; k++ {
		s := symbol(float64(k) / float64(n))
		row := k
		for j := 0; j < n; j++ {
			FD.Set(row, j, FD.At(row, j)*s)
		}
	}
	A := linalg.MatMul(true, false, F, FD)
	for i := 0; i < n; i++ {
		A.Add(i, i, coeff(float64(i)/float64(n)))
	}
	// Symmetrize against rounding.
	At := A.Transposed()
	A.AddScaled(1, At)
	A.Scale(0.5)
	if invert {
		inv, err := linalg.InvertSPD(A)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		A = inv
	}
	return &Problem{Name: name, K: &Dense{A}}, nil
}

// K15 is a 2-D-style pseudo-spectral advection-diffusion-reaction operator
// with variable coefficients: a diffusion trend |k|² times a rough
// multiplicative perturbation.
func K15(n int, seed int64) (*Problem, error) {
	rng := rand.New(rand.NewSource(seed))
	p, err := pseudoSpectral("K15", n,
		func(f float64) float64 { return (1 + 40*f*f) * (0.2 + 1.6*rng.Float64()) },
		func(f float64) float64 { return 2 + math.Sin(6*math.Pi*f) },
		false)
	if err != nil {
		return nil, err
	}
	p.Desc = "pseudo-spectral advection-diffusion-reaction operator (variable coefficients)"
	return p, nil
}

// K16 is like K15 with an even rougher symbol (higher coefficient contrast).
func K16(n int, seed int64) (*Problem, error) {
	rng := rand.New(rand.NewSource(seed))
	p, err := pseudoSpectral("K16", n,
		func(f float64) float64 { return (1 + 25*f) * math.Exp(2*rng.NormFloat64()) },
		func(f float64) float64 { return 1 + 10*f },
		false)
	if err != nil {
		return nil, err
	}
	p.Desc = "pseudo-spectral operator with rough reaction coefficients"
	return p, nil
}

// K17 is a 3-D-style pseudo-spectral operator with variable coefficients
// (steeper trend, rough perturbation).
func K17(n int, seed int64) (*Problem, error) {
	rng := rand.New(rand.NewSource(seed))
	p, err := pseudoSpectral("K17", n,
		func(f float64) float64 { return (1 + 100*f*f*f) * (0.3 + 1.4*rng.Float64()) },
		func(f float64) float64 { return 3 + 2*math.Cos(10*math.Pi*f) },
		false)
	if err != nil {
		return nil, err
	}
	p.Desc = "3-D pseudo-spectral operator with variable coefficients"
	return p, nil
}
