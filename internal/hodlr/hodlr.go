// Package hodlr implements the HODLR baseline of Table 3 (Ambikasaran &
// Darve): a hierarchically off-diagonal low-rank approximation in the input
// (lexicographic) order, with off-diagonal blocks compressed by partial-
// pivoted adaptive cross approximation (ACA) — the same construction as the
// HODLR library the paper compares against. The U, V factors are not nested,
// so the matvec costs O(N·r·log N) rather than GOFMM's O(N).
package hodlr

import (
	"math"
	"time"

	"gofmm/internal/linalg"
)

// Oracle is the entry access HODLR needs (structurally identical to
// core.SPD).
type Oracle interface {
	Dim() int
	At(i, j int) float64
}

// Config tunes the compression.
type Config struct {
	// LeafSize is the diagonal block size at the recursion base.
	LeafSize int
	// Tol is the relative ACA stopping tolerance.
	Tol float64
	// MaxRank caps each off-diagonal block's rank.
	MaxRank int
}

func (c Config) withDefaults() Config {
	if c.LeafSize <= 0 {
		c.LeafSize = 256
	}
	if c.Tol <= 0 {
		c.Tol = 1e-5
	}
	if c.MaxRank <= 0 {
		c.MaxRank = 512
	}
	return c
}

// node is one recursion level: either a dense leaf or two children plus the
// low-rank coupling K[lo:mid, mid:hi] ≈ U·Vᵀ (the lower block is its
// transpose by symmetry).
type node struct {
	lo, hi, mid int
	dense       *linalg.Matrix
	U, V        *linalg.Matrix
	left, right *node
}

// HODLR is the compressed representation.
type HODLR struct {
	Cfg  Config
	root *node
	n    int
	// Stats.
	CompressTime, EvalTime float64
	MaxRankSeen            int
	totalRank, blocks      int
}

// AvgRank reports the mean off-diagonal block rank.
func (h *HODLR) AvgRank() float64 {
	if h.blocks == 0 {
		return 0
	}
	return float64(h.totalRank) / float64(h.blocks)
}

// Compress builds the HODLR approximation of K.
func Compress(K Oracle, cfg Config) *HODLR {
	cfg = cfg.withDefaults()
	h := &HODLR{Cfg: cfg, n: K.Dim()}
	start := time.Now()
	h.root = h.build(K, 0, K.Dim())
	h.CompressTime = time.Since(start).Seconds()
	return h
}

func (h *HODLR) build(K Oracle, lo, hi int) *node {
	n := hi - lo
	if n <= h.Cfg.LeafSize {
		d := linalg.NewMatrix(n, n)
		for j := 0; j < n; j++ {
			col := d.Col(j)
			for i := 0; i < n; i++ {
				col[i] = K.At(lo+i, lo+j)
			}
		}
		return &node{lo: lo, hi: hi, dense: d}
	}
	mid := lo + (n+1)/2
	nd := &node{lo: lo, hi: hi, mid: mid}
	nd.U, nd.V = ACA(K, lo, mid, mid, hi, h.Cfg.Tol, h.Cfg.MaxRank)
	r := nd.U.Cols
	h.totalRank += r
	h.blocks++
	if r > h.MaxRankSeen {
		h.MaxRankSeen = r
	}
	nd.left = h.build(K, lo, mid)
	nd.right = h.build(K, mid, hi)
	return nd
}

// ACA computes a partial-pivoted adaptive cross approximation of the block
// K[r0:r1, c0:c1] ≈ U·Vᵀ. It touches only O((m+n)·rank) entries — the
// standard HODLR construction.
func ACA(K Oracle, r0, r1, c0, c1 int, tol float64, maxRank int) (U, V *linalg.Matrix) {
	m, n := r1-r0, c1-c0
	var us, vs [][]float64
	used := make(map[int]bool) // used pivot rows
	var frobEst float64        // ‖UVᵀ‖²_F running estimate
	nextRow := 0
	for len(us) < maxRank && len(us) < min(m, n) {
		// Pick the next unused pivot row.
		for used[nextRow] && nextRow < m {
			nextRow++
		}
		if nextRow >= m {
			break
		}
		i := nextRow
		used[i] = true
		// Residual row: K[i,:] − Σ u_k[i]·v_k.
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			row[j] = K.At(r0+i, c0+j)
		}
		for k := range us {
			linalg.Axpy(-us[k][i], vs[k], row)
		}
		// Pivot column: largest residual entry.
		jmax, best := -1, 0.0
		for j, v := range row {
			if a := abs(v); a > best {
				best, jmax = a, j
			}
		}
		if jmax < 0 || best == 0 {
			nextRow++
			continue
		}
		piv := row[jmax]
		for j := range row {
			row[j] /= piv
		}
		// Residual column: K[:,jmax] − Σ v_k[jmax]·u_k.
		col := make([]float64, m)
		for r := 0; r < m; r++ {
			col[r] = K.At(r0+r, c0+jmax)
		}
		for k := range us {
			linalg.Axpy(-vs[k][jmax], us[k], col)
		}
		us = append(us, col)
		vs = append(vs, row)
		// Greedy next pivot row: largest entry of the new column (not used).
		nextRow = 0
		bestC := -1.0
		for r := 0; r < m; r++ {
			if used[r] {
				continue
			}
			if a := abs(col[r]); a > bestC {
				bestC, nextRow = a, r
			}
		}
		// Convergence: ‖u‖·‖v‖ ≤ tol·‖UVᵀ‖_F (running estimate).
		nu, nv := linalg.Nrm2(col), linalg.Nrm2(row)
		frobEst += nu * nu * nv * nv
		for k := 0; k+1 < len(us); k++ {
			frobEst += 2 * abs(linalg.Dot(us[k], col)*linalg.Dot(vs[k], row))
		}
		if nu*nv <= tol*math.Sqrt(frobEst) {
			break
		}
	}
	r := len(us)
	U = linalg.NewMatrix(m, max(r, 0))
	V = linalg.NewMatrix(n, max(r, 0))
	for k := 0; k < r; k++ {
		copy(U.Col(k), us[k])
		copy(V.Col(k), vs[k])
	}
	return U, V
}

// Matvec computes K̃·W.
func (h *HODLR) Matvec(W *linalg.Matrix) *linalg.Matrix {
	start := time.Now()
	out := linalg.NewMatrix(W.Rows, W.Cols)
	h.apply(h.root, W, out)
	h.EvalTime = time.Since(start).Seconds()
	return out
}

func (h *HODLR) apply(nd *node, W, out *linalg.Matrix) {
	if nd.dense != nil {
		wv := W.View(nd.lo, 0, nd.hi-nd.lo, W.Cols)
		ov := out.View(nd.lo, 0, nd.hi-nd.lo, W.Cols)
		linalg.Gemm(false, false, 1, nd.dense, wv, 1, ov)
		return
	}
	w1 := W.View(nd.lo, 0, nd.mid-nd.lo, W.Cols)
	w2 := W.View(nd.mid, 0, nd.hi-nd.mid, W.Cols)
	o1 := out.View(nd.lo, 0, nd.mid-nd.lo, W.Cols)
	o2 := out.View(nd.mid, 0, nd.hi-nd.mid, W.Cols)
	if nd.U.Cols > 0 {
		// o1 += U (Vᵀ w2); o2 += V (Uᵀ w1)   (symmetry: K21 = K12ᵀ).
		t := linalg.MatMul(true, false, nd.V, w2)
		linalg.Gemm(false, false, 1, nd.U, t, 1, o1)
		t2 := linalg.MatMul(true, false, nd.U, w1)
		linalg.Gemm(false, false, 1, nd.V, t2, 1, o2)
	}
	h.apply(nd.left, W, out)
	h.apply(nd.right, W, out)
}

func abs(x float64) float64 { return math.Abs(x) }
