// Package ctxcheck is the golden fixture for the ctxcheck analyzer.
package ctxcheck

import (
	"context"
	"time"
)

func doWork(ctx context.Context) error {
	<-ctx.Done()
	return nil
}

func run(ctx context.Context, f func(context.Context) error) error {
	return f(ctx)
}

// LegacyCtx is the ctx-aware variant behind the legacy bridge below.
func LegacyCtx(ctx context.Context) error { return doWork(ctx) }

// Legacy forwards through its own Ctx variant: the one sanctioned use of a
// fresh root in a ctx-less function.
func Legacy() error {
	return LegacyCtx(context.Background())
}

// A ctx-less function handing a fresh root to an unrelated callee: flagged.
func Orphan() error {
	return doWork(context.Background()) // want `context\.Background\(\) in internal package`
}

// TODO is no better than Background here: flagged.
func OrphanTODO() error {
	return doWork(context.TODO()) // want `context\.TODO\(\) in internal package`
}

// Threading the caller's ctx straight through: clean.
func Threads(ctx context.Context) error {
	return doWork(ctx)
}

// Deriving a child context before passing it on: clean.
func Derives(ctx context.Context) error {
	sub, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return doWork(sub)
}

// Multi-assignment through a helper still derives: clean.
func phaseCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

func DerivesViaHelper(ctx context.Context) error {
	upCtx, upCancel := phaseCtx(ctx)
	defer upCancel()
	return doWork(upCtx)
}

// A function that was handed a ctx must not mint a fresh root: flagged.
func Drops(ctx context.Context) error {
	return doWork(context.Background()) // want `context\.Background\(\) drops the caller's ctx "ctx"`
}

var staleCtx context.Context

// Passing a context unrelated to the caller's: flagged.
func Stale(ctx context.Context) error {
	saved := staleCtx
	return doWork(saved) // want `passes "saved", which does not derive from the caller's ctx "ctx"`
}

// Context-typed closure parameters carry the caller's ctx per call site:
// clean here, checked at each call.
func Closure(ctx context.Context) error {
	return run(ctx, func(c context.Context) error {
		return doWork(c)
	})
}

type sink struct{ buf []byte }

func (s *sink) flush() error { return nil }

// FlushCtx advertises ctx-awareness but never consumes it: flagged.
func (s *sink) FlushCtx(ctx context.Context) error { // want `exported FlushCtx never uses its ctx parameter "ctx"`
	return s.flush()
}

// DrainCtx explicitly opts out with the blank name: clean.
func (s *sink) DrainCtx(_ context.Context) error {
	return s.flush()
}
