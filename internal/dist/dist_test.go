package dist

import (
	"math"
	"math/rand"
	"testing"

	"gofmm/internal/core"
	"gofmm/internal/linalg"
)

type denseOracle struct{ M *linalg.Matrix }

func (d denseOracle) Dim() int            { return d.M.Rows }
func (d denseOracle) At(i, j int) float64 { return d.M.At(i, j) }
func (d denseOracle) Submatrix(I, J []int, dst *linalg.Matrix) {
	for c, j := range J {
		col := dst.Col(c)
		src := d.M.Col(j)
		for r, i := range I {
			col[r] = src[i]
		}
	}
}

func gaussK(rng *rand.Rand, n int) *linalg.Matrix {
	X := linalg.GaussianMatrix(rng, 2, n)
	K := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			d2 := 0.0
			for q := 0; q < 2; q++ {
				t := X.At(q, i) - X.At(q, j)
				d2 += t * t
			}
			K.Set(i, j, math.Exp(-d2/1.28))
		}
	}
	for i := 0; i < n; i++ {
		K.Add(i, i, 1e-8)
	}
	return K
}

func compress(t *testing.T, n int, budget float64) (*core.Hierarchical, *linalg.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(190))
	K := gaussK(rng, n)
	h, err := core.Compress(denseOracle{K}, core.Config{
		LeafSize: 32, MaxRank: 24, Tol: 1e-7, Kappa: 8, Budget: budget,
		Distance: core.Kernel, Exec: core.Sequential, Seed: 191, CacheBlocks: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, K
}

func TestDistributedMatchesSequential(t *testing.T) {
	for _, budget := range []float64{0, 0.2} {
		h, _ := compress(t, 512, budget)
		rng := rand.New(rand.NewSource(192))
		W := linalg.GaussianMatrix(rng, 512, 3)
		want := h.Matvec(W)
		for _, p := range []int{1, 2, 4, 8} {
			m, err := Distribute(h, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Matvec(W)
			if err != nil {
				t.Fatal(err)
			}
			if d := linalg.RelFrobDiff(got, want); d > 1e-12 {
				t.Fatalf("budget %g, P=%d: distributed result differs by %g", budget, p, d)
			}
		}
	}
}

func TestDistributeValidation(t *testing.T) {
	h, _ := compress(t, 256, 0)
	if _, err := Distribute(h, 3); err == nil {
		t.Fatal("expected error for non-power-of-two ranks")
	}
	if _, err := Distribute(h, 64); err == nil {
		t.Fatal("expected error for more ranks than leaves")
	}
}

func TestSingleRankNoCommunication(t *testing.T) {
	h, _ := compress(t, 256, 0.2)
	m, err := Distribute(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(193))
	if _, err := m.Matvec(linalg.GaussianMatrix(rng, 256, 2)); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Messages != 0 || m.Stats.Bytes != 0 {
		t.Fatalf("single rank communicated: %+v", m.Stats)
	}
}

func TestHSSCommVolumeIndependentOfN(t *testing.T) {
	// The headline scaling property: with budget 0 (no halo) and fixed P and
	// rank cap, the skeleton-message volume does not grow with N.
	var bytes []int64
	for _, n := range []int{256, 1024} {
		h, _ := compress(t, n, 0)
		m, err := Distribute(h, 4)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(194))
		if _, err := m.Matvec(linalg.GaussianMatrix(rng, n, 2)); err != nil {
			t.Fatal(err)
		}
		if m.Stats.ByPhase["halo"] != 0 {
			t.Fatalf("HSS mode produced halo traffic: %+v", m.Stats.ByPhase)
		}
		bytes = append(bytes, m.Stats.Bytes)
	}
	if bytes[0] == 0 {
		t.Fatal("no communication recorded at P=4")
	}
	// 4× the points, same rank cap: volume must not grow by more than 2×
	// (it is bounded by the skeleton sizes at the top levels).
	if float64(bytes[1]) > 2*float64(bytes[0]) {
		t.Fatalf("HSS comm volume grew with N: %d -> %d bytes", bytes[0], bytes[1])
	}
}

func TestFMMHaloOnlyAcrossRankBoundaries(t *testing.T) {
	h, _ := compress(t, 512, 0.2)
	m, err := Distribute(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(195))
	if _, err := m.Matvec(linalg.GaussianMatrix(rng, 512, 2)); err != nil {
		t.Fatal(err)
	}
	// Count the near pairs that cross rank boundaries; the halo volume must
	// match exactly (sizeof(block rows)·r·8).
	var want int64
	tr := h.Tree
	for _, beta := range tr.Leaves() {
		for _, alpha := range h.NearList(beta) {
			if m.ownerOf(alpha) != m.ownerOf(beta) {
				want += int64(tr.Nodes[alpha].Size()) * 2 * 8
			}
		}
	}
	if got := m.Stats.ByPhase["halo"]; got != want {
		t.Fatalf("halo bytes = %d, want %d", got, want)
	}
}

func TestMorePartitionsMoreMessages(t *testing.T) {
	h, _ := compress(t, 512, 0)
	var msgs []int
	for _, p := range []int{2, 4, 8} {
		m, err := Distribute(h, p)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(196))
		if _, err := m.Matvec(linalg.GaussianMatrix(rng, 512, 2)); err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, m.Stats.Messages)
	}
	if !(msgs[0] < msgs[1] && msgs[1] < msgs[2]) {
		t.Fatalf("message counts not increasing with P: %v", msgs)
	}
}
