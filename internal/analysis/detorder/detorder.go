// Package detorder flags `range` loops over maps whose bodies feed
// order-sensitive numeric state: appending to a slice that outlives the
// loop, or accumulating into floating-point variables. Go randomizes map
// iteration order per run, so such loops make results differ between
// otherwise identical executions — exactly the class of bug the PR 4
// bit-identical determinism golden test exists to catch at runtime, except
// the runtime test only sees the configurations it happens to run. Loops
// whose collected slice is sorted afterwards in the same function are
// recognized as the standard collect-then-sort idiom and not flagged.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"gofmm/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "detorder",
	Doc: "flag map iteration feeding order-sensitive numeric state (float accumulation, " +
		"slice append) in the deterministic numeric packages",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, fd, rs)
		return true
	})
}

func checkMapRange(pass *framework.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				if isFloat(pass, lhs) && declaredOutside(pass, lhs, rs) {
					pass.Reportf(as.Pos(),
						"floating-point accumulation into %s inside map iteration is "+
							"nondeterministic (map order varies per run); iterate sorted keys",
						types.ExprString(lhs))
				}
			}
		case token.ASSIGN, token.DEFINE:
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) {
					continue
				}
				lhs := as.Lhs[i]
				if !declaredOutside(pass, lhs, rs) {
					continue
				}
				if obj := framework.ObjectOf(pass.TypesInfo, lhs); obj != nil && sortedAfter(pass, fd, rs, obj) {
					continue // collect-then-sort idiom
				}
				pass.Reportf(as.Pos(),
					"append to %s inside map iteration is nondeterministic (map order "+
						"varies per run); sort the collected slice or iterate sorted keys",
					types.ExprString(lhs))
			}
		}
		return true
	})
}

func isFloat(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declaredOutside reports whether the lvalue outlives the range body: a
// variable declared before the loop, or any selector/index lvalue (which
// reaches state owned elsewhere).
func declaredOutside(pass *framework.Pass, lhs ast.Expr, rs *ast.RangeStmt) bool {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		obj := framework.ObjectOf(pass.TypesInfo, id)
		return obj != nil && obj.Pos() < rs.Pos()
	}
	return true // x.f, x[i]: state that outlives the loop
}

func isBuiltinAppend(pass *framework.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort* call
// positioned after the range loop in the same function — the deterministic
// collect-then-sort idiom.
func sortedAfter(pass *framework.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return true
		}
		fn := framework.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if framework.ObjectOf(pass.TypesInfo, arg) == obj {
				found = true
			}
		}
		return true
	})
	return found
}
