package plan

import (
	"fmt"

	"gofmm/internal/resilience"
)

// Structural export and reassembly: the operator store persists a compiled
// plan as its op stream plus the post-batching stage/task schedule, and
// reconstructs an equivalent Plan at load time without re-lowering or
// re-batching. Reassemble re-validates everything the Builder would have
// (the stored stream is untrusted input) and recomputes the digest from the
// reconstructed structure, so a loader can prove the rebuilt plan is
// byte-for-byte the schedule that was saved by comparing digests.

// StageSpec is the exported structural description of one stage: its
// post-batching task boundaries as [Lo, Hi) op ranges.
type StageSpec struct {
	Name     string
	Parallel bool
	Tasks    [][2]int
}

// StageSpecs returns the plan's stage schedule in replay order.
func (p *Plan) StageSpecs() []StageSpec {
	specs := make([]StageSpec, len(p.stages))
	for si := range p.stages {
		st := &p.stages[si]
		spec := StageSpec{Name: st.Name, Parallel: st.Parallel, Tasks: make([][2]int, len(st.tasks))}
		for ti, t := range st.tasks {
			spec.Tasks[ti] = [2]int{t.Lo, t.Hi}
		}
		specs[si] = spec
	}
	return specs
}

// reassembleErr builds the typed validation error of Reassemble.
func reassembleErr(format string, args ...any) error {
	return fmt.Errorf("%w: plan: reassemble: %s", resilience.ErrInvalidInput,
		fmt.Sprintf(format, args...))
}

// Reassemble reconstructs an executable Plan from persisted structure. The
// input is validated as untrusted: every ref must address the declared
// arena, every permutation index its declared range, every GEMM its operand
// shapes, and the task ranges must exactly partition the op stream in
// order (the shape every Builder output has). Flop accounting, batching
// statistics and the digest are recomputed from the validated structure;
// callers holding the originally saved digest compare it against
// Digest() to prove the rebuilt schedule is the one that was stored.
func Reassemble(n, arenaRows int, ops []Op, stages []StageSpec) (*Plan, error) {
	if n < 0 || arenaRows < 0 {
		return nil, reassembleErr("dimension %d, arena %d rows", n, arenaRows)
	}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpGather:
			if op.A != nil || op.A32 != nil || len(op.Idx) != op.C.Rows {
				return nil, reassembleErr("op %d: malformed gather", i)
			}
			for _, v := range op.Idx {
				if v < 0 || v >= n {
					return nil, reassembleErr("op %d: gather index %d outside [0,%d)", i, v, n)
				}
			}
		case OpScatter:
			if op.A != nil || op.A32 != nil || len(op.Idx) != n {
				return nil, reassembleErr("op %d: malformed scatter", i)
			}
			for _, v := range op.Idx {
				if v < 0 || v >= op.B.Rows {
					return nil, reassembleErr("op %d: scatter index %d outside [0,%d)", i, v, op.B.Rows)
				}
			}
		case OpGemm:
			if (op.A == nil) == (op.A32 == nil) {
				return nil, reassembleErr("op %d: gemm needs exactly one constant operand", i)
			}
			if op.Beta != 0 && op.Beta != 1 {
				return nil, reassembleErr("op %d: beta %g", i, op.Beta)
			}
			var m, k int
			if op.A32 != nil {
				if op.TransA {
					return nil, reassembleErr("op %d: transposed float32 gemm", i)
				}
				m, k = op.A32.Rows, op.A32.Cols
			} else {
				m, k = op.A.Rows, op.A.Cols
				if op.TransA {
					m, k = k, m
				}
			}
			if op.B.Rows != k || op.C.Rows != m {
				return nil, reassembleErr("op %d: gemm %d×%d against B %d rows, C %d rows",
					i, m, k, op.B.Rows, op.C.Rows)
			}
		case OpCopy, OpAdd:
			if op.B.Rows != op.C.Rows {
				return nil, reassembleErr("op %d: %s of %d rows into %d", i, op.Kind, op.B.Rows, op.C.Rows)
			}
		case OpZero:
		default:
			return nil, reassembleErr("op %d: unknown kind %d", i, int(op.Kind))
		}
		needB := op.Kind == OpGemm || op.Kind == OpCopy || op.Kind == OpAdd || op.Kind == OpScatter
		needC := op.Kind != OpScatter
		if needB && !op.B.valid(arenaRows) {
			return nil, reassembleErr("op %d (%s) reads invalid ref %+v", i, op.Kind, op.B)
		}
		if needC && !op.C.valid(arenaRows) {
			return nil, reassembleErr("op %d (%s) writes invalid ref %+v", i, op.Kind, op.C)
		}
	}
	// The task ranges must exactly partition [0, len(ops)) in order — the
	// invariant every Builder output satisfies, and what makes a replay
	// execute each op exactly once.
	p := &Plan{n: n, arenaRows: arenaRows, ops: ops, stages: make([]Stage, len(stages))}
	next := 0
	for si, spec := range stages {
		st := Stage{Name: spec.Name, Parallel: spec.Parallel, tasks: make([]task, len(spec.Tasks))}
		for ti, tr := range spec.Tasks {
			lo, hi := tr[0], tr[1]
			if lo != next || hi <= lo || hi > len(ops) {
				return nil, reassembleErr("stage %d task %d range [%d,%d) breaks the partition at %d",
					si, ti, lo, hi, next)
			}
			t := task{Lo: lo, Hi: hi}
			if isBatchedGroup(ops, lo, hi) {
				t.batched = true
				p.batchedGemms += hi - lo
				p.gemmBatches++
			}
			st.tasks[ti] = t
			next = hi
		}
		p.stages[si] = st
	}
	if next != len(ops) {
		return nil, reassembleErr("tasks cover %d of %d ops", next, len(ops))
	}
	for i := range p.ops {
		p.flopsPerCol += p.ops[i].flopsPerCol()
	}
	p.digest = p.computeDigest()
	return p, nil
}

// isBatchedGroup reports whether ops [lo, hi) form a batched dispatch unit:
// at least two single GEMMs of identical batching signature. This recovers
// the batching statistics without re-running the batcher — the Builder only
// ever produces multi-op GEMM tasks through batching (hand-lowered
// multi-GEMM tasks accumulate, so their beta bits differ).
func isBatchedGroup(ops []Op, lo, hi int) bool {
	if hi-lo < 2 {
		return false
	}
	sig, ok := ops[lo].gemmShape()
	if !ok {
		return false
	}
	for i := lo + 1; i < hi; i++ {
		s, k := ops[i].gemmShape()
		if !k || s != sig {
			return false
		}
	}
	return true
}
