package gofmm

import (
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
	"gofmm/testmat"
)

// End-to-end acceptance test for the resilience layer: with deterministic
// fault injection running at the ISSUE's reference rates (5% task failures,
// 5% message drops, fixed seed), the full pipeline — Compress with the
// Dynamic executor, Distribute, Machine.Matvec — must complete, stay
// numerically within 10× of the fault-free run, and account for every
// injected fault in the telemetry registry.
func TestChaosEndToEnd(t *testing.T) {
	p, err := testmat.Generate("K05", 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		LeafSize: 64, MaxRank: 64, Tol: 1e-5, Budget: 0.03,
		Distance: Angle, Exec: Dynamic, NumWorkers: 4, Seed: 17,
		CacheBlocks: true,
	}
	rng := rand.New(rand.NewSource(18))
	W := linalg.GaussianMatrix(rng, 1024, 4)

	// Fault-free baseline.
	H0, err := Compress(p.K, base)
	if err != nil {
		t.Fatal(err)
	}
	M0, err := Distribute(H0, 8)
	if err != nil {
		t.Fatal(err)
	}
	U0, err := M0.Matvec(W)
	if err != nil {
		t.Fatal(err)
	}
	baseErr := H0.SampleRelErr(W, U0, 100, 19)

	// Chaos run: same configuration plus injected faults.
	rec := NewRecorder()
	chaos := NewChaos(ChaosConfig{Seed: 20, TaskFail: 0.05, MsgDrop: 0.05}, rec)
	cfg := base
	cfg.Chaos = chaos
	cfg.Telemetry = rec
	H1, err := Compress(p.K, cfg)
	if err != nil {
		t.Fatalf("Compress under fault injection: %v", err)
	}
	M1, err := Distribute(H1, 8)
	if err != nil {
		t.Fatal(err)
	}
	M1.Chaos = chaos
	M1.Telemetry = rec
	U1, err := M1.Matvec(W)
	if err != nil {
		t.Fatalf("Machine.Matvec under fault injection: %v", err)
	}
	chaosErr := H1.SampleRelErr(W, U1, 100, 19)
	if chaosErr > 10*baseErr {
		t.Fatalf("chaos error %g exceeds 10× baseline %g", chaosErr, baseErr)
	}

	// Every injected fault must be visible in telemetry, and every fault
	// must have been recovered by exactly one retry (exhaustion would have
	// failed the calls above).
	inj := chaos.Injected()
	taskFails := inj["task_fail"]
	msgDrops := inj["msg_drop"]
	if taskFails == 0 {
		t.Fatal("no task failures injected at p=0.05 over a 1024-point compression")
	}
	if msgDrops == 0 {
		t.Fatal("no message drops injected at p=0.05 over an 8-rank matvec")
	}
	if got := rec.Counter("chaos.task_fail.injected").Value(); got != taskFails {
		t.Fatalf("chaos.task_fail.injected=%d, injector says %d", got, taskFails)
	}
	if got := rec.Counter("chaos.msg_drop.injected").Value(); got != msgDrops {
		t.Fatalf("chaos.msg_drop.injected=%d, injector says %d", got, msgDrops)
	}
	if got := rec.Counter("sched.task_retries").Value(); got != taskFails {
		t.Fatalf("sched.task_retries=%d, want %d (one retry per injected failure)", got, taskFails)
	}
	if got := rec.Counter("dist.msg.retries").Value(); got != msgDrops {
		t.Fatalf("dist.msg.retries=%d, want %d", got, msgDrops)
	}
	if int64(M1.Stats.Retries) != msgDrops {
		t.Fatalf("CommStats.Retries=%d, want %d", M1.Stats.Retries, msgDrops)
	}

	// With retries hiding the faults completely, the chaos compression is
	// bit-identical to the baseline.
	if !linalg.EqualApprox(U0, U1, 0) {
		t.Fatal("chaos run diverged from fault-free run")
	}
}

// TestChaosDisabledMatchesBaseline: a nil chaos injector must leave the
// pipeline untouched (guards against accidental overhead or perturbation
// when the harness is off).
func TestChaosDisabledMatchesBaseline(t *testing.T) {
	p, err := testmat.Generate("K05", 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		LeafSize: 64, MaxRank: 32, Tol: 1e-5, Budget: 0.03,
		Distance: Angle, Exec: Dynamic, NumWorkers: 2, Seed: 21,
		CacheBlocks: true,
	}
	H0, err := Compress(p.K, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chaos = NewChaos(ChaosConfig{Seed: 22}, nil) // all probabilities zero
	H1, err := Compress(p.K, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	W := linalg.GaussianMatrix(rng, 512, 2)
	if !linalg.EqualApprox(H0.Matvec(W), H1.Matvec(W), 0) {
		t.Fatal("zero-probability chaos config changed the result")
	}
}
