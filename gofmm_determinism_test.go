package gofmm

// Determinism golden test: the same seed and config must reproduce the
// compression byte-for-byte and the batched evaluation bit-for-bit — across
// repeated runs and across worker-pool sizes. This catches the classic
// nondeterminism leaks of a task-parallel tree code: map-iteration order
// sneaking into a traversal, floating-point reduction order depending on
// which worker finishes first, or a pooled buffer carrying state between
// runs. Evaluation must be bit-identical even across 1-vs-N workers because
// every task writes a disjoint buffer slice and accumulates its own inputs
// in a fixed order; the DAG only constrains *when* a task runs, never what
// it computes.

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"gofmm/internal/core"
	"gofmm/internal/linalg"
)

func determinismConfig(workers int) Config {
	return Config{
		LeafSize: 32, MaxRank: 48, Tol: 1e-5, Kappa: 8, Budget: 0.05,
		Distance: core.Angle, Exec: core.Dynamic, NumWorkers: workers,
		Seed: 42, CacheBlocks: true, Workspace: NewWorkspacePool(),
	}
}

// serialize round-trips h through Save and returns the bytes.
func serialize(t *testing.T, h *Hierarchical) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(h, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// bitIdentical reports whether two matrices are equal under ==, i.e. the
// exact same bit patterns (no tolerance).
func bitIdentical(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for j := 0; j < a.Cols; j++ {
		ca, cb := a.Col(j), b.Col(j)
		for i := range ca {
			if ca[i] != cb[i] {
				return false
			}
		}
	}
	return true
}

func TestDeterminismGolden(t *testing.T) {
	const n, r = 384, 9
	K := randomSPD(n, 777)
	rng := rand.New(rand.NewSource(8))
	X := linalg.GaussianMatrix(rng, n, r)

	// Two independent compressions, same seed + config (4 workers each):
	// the serialized trees must be byte-identical.
	h1, err := Compress(NewDense(K), determinismConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Compress(NewDense(K), determinismConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := serialize(t, h1), serialize(t, h2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("serialized trees differ between two same-seed compressions (%d vs %d bytes)", len(b1), len(b2))
	}

	// Two batched evaluations on the same operator: bit-identical.
	U1 := h1.Matmat(X)
	U2 := h1.Matmat(X)
	if !bitIdentical(U1, U2) {
		t.Fatal("Matmat is not bit-identical across two runs on the same operator")
	}

	// The independently compressed operator must evaluate bit-identically
	// too (its structure is byte-identical, so any difference would come
	// from hidden state outside the serialized form).
	if U := h2.Matmat(X); !bitIdentical(U1, U) {
		t.Fatal("Matmat differs between two same-seed compressions")
	}

	// 1-vs-N workers: the task DAG constrains execution order, not results.
	// Evaluate the same compressed operator sequentially, with one worker,
	// and with eight workers; all must match bit-for-bit.
	for _, workers := range []int{1, 8} {
		hw, err := Compress(NewDense(K), determinismConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		if bw := serialize(t, hw); !bytes.Equal(b1, bw) {
			t.Fatalf("serialized tree differs between 4 and %d workers", workers)
		}
		if U := hw.Matmat(X); !bitIdentical(U1, U) {
			t.Fatalf("Matmat differs between 4 and %d workers", workers)
		}
	}
	seq := determinismConfig(1)
	seq.Exec = core.Sequential
	hs, err := Compress(NewDense(K), seq)
	if err != nil {
		t.Fatal(err)
	}
	if U := hs.Matmat(X); !bitIdentical(U1, U) {
		t.Fatal("Matmat differs between dynamic and sequential executors")
	}
}

// TestPlanDeterminismGolden extends the golden determinism contract to
// compiled evaluation plans: for a fixed seed and config the lowered op
// sequence must be byte-stable (identical structural digests across
// independent compilations and across worker-pool sizes — lowering is a
// symbolic traversal, workers never touch it), and the replayed evaluation
// must be bit-identical across repeated replays, across independently
// compiled operators, across 1-vs-N replay workers, and against the
// sequential executor. Replay tasks write disjoint arena regions with a
// fixed per-task op order, so the stage barriers only constrain *when* an
// op runs, never what it computes.
func TestPlanDeterminismGolden(t *testing.T) {
	const n, r = 384, 3
	K := randomSPD(n, 777)
	rng := rand.New(rand.NewSource(13))
	X := linalg.GaussianMatrix(rng, n, r)
	x1 := linalg.GaussianMatrix(rng, n, 1)

	compile := func(workers int) *Hierarchical {
		t.Helper()
		cfg := determinismConfig(workers)
		cfg.CompilePlan = true
		h, err := Compress(NewDense(K), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if h.Plan() == nil {
			t.Fatal("CompilePlan did not install a plan")
		}
		return h
	}

	h1 := compile(4)
	digest := h1.Plan().DigestHex()
	if len(digest) != 64 {
		t.Fatalf("plan digest %q is not a sha256 hex string", digest)
	}

	// Same seed, independent compression: byte-identical op-sequence digest.
	h2 := compile(4)
	if d := h2.Plan().DigestHex(); d != digest {
		t.Fatalf("plan digest differs between two same-seed compressions:\n%s\n%s", digest, d)
	}

	// Replays on one operator: bit-identical across runs, both widths.
	U1 := h1.Matmat(X)
	if U := h1.Matmat(X); !bitIdentical(U1, U) {
		t.Fatal("plan replay is not bit-identical across two runs")
	}
	u1 := h1.Matvec(x1)
	if u := h1.Matvec(x1); !bitIdentical(u1, u) {
		t.Fatal("width-1 plan replay is not bit-identical across two runs")
	}

	// The independently compiled operator replays bit-identically too.
	if U := h2.Matmat(X); !bitIdentical(U1, U) {
		t.Fatal("plan replay differs between two same-seed compressions")
	}

	// 1-vs-N replay workers: same digest, same bits.
	for _, workers := range []int{1, 8} {
		hw := compile(workers)
		if d := hw.Plan().DigestHex(); d != digest {
			t.Fatalf("plan digest differs between 4 and %d workers", workers)
		}
		if U := hw.Matmat(X); !bitIdentical(U1, U) {
			t.Fatalf("plan replay differs between 4 and %d workers", workers)
		}
		if u := hw.Matvec(x1); !bitIdentical(u1, u) {
			t.Fatalf("width-1 plan replay differs between 4 and %d workers", workers)
		}
	}

	// Sequential executor: the replay runs on the calling goroutine, the
	// bits must not notice.
	seq := determinismConfig(1)
	seq.Exec = core.Sequential
	seq.CompilePlan = true
	hs, err := Compress(NewDense(K), seq)
	if err != nil {
		t.Fatal(err)
	}
	if d := hs.Plan().DigestHex(); d != digest {
		t.Fatal("plan digest differs between dynamic and sequential executors")
	}
	if U := hs.Matmat(X); !bitIdentical(U1, U) {
		t.Fatal("plan replay differs between dynamic and sequential executors")
	}

	// And the compiled path tracks the interpreter to near-machine
	// precision (the wall in gofmm_plan_test.go sweeps this property; here
	// it pins the golden fixture).
	ref, err := h1.InterpMatmatCtx(context.Background(), X)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.RelFrobDiff(U1, ref); d > 1e-13 {
		t.Fatalf("golden fixture: plan vs interpreter differ by %.3e", d)
	}
}
