// Package store is a stub of gofmm/internal/store for the mmaplife golden
// suite: same names, same shapes, no unsafe.
package store

import "errors"

type SectionKind uint32

const (
	SecMeta    SectionKind = 1
	SecArena64 SectionKind = 4
)

type File struct {
	sections map[SectionKind][]byte
}

func (f *File) Section(kind SectionKind) ([]byte, bool) {
	b, ok := f.sections[kind]
	return b, ok
}

func Float64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, errors.New("misaligned")
	}
	return make([]float64, len(b)/8), nil
}

func Float32s(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, errors.New("misaligned")
	}
	return make([]float32, len(b)/4), nil
}
