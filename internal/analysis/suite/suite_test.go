package suite_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"gofmm/internal/analysis/framework"
	"gofmm/internal/analysis/load"
	"gofmm/internal/analysis/suite"
)

const src = `package core

func collect(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

func collectIgnored(m map[int]int) []int {
	var out []int
	for k := range m {
		//gofmmlint:ignore detorder caller rehashes into a set
		out = append(out, k)
	}
	return out
}
`

func checkAs(t *testing.T, importPath string) []suite.Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "core.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := framework.NewInfo()
	conf := types.Config{}
	tpkg, err := conf.Check(importPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := suite.Run(&load.Package{
		ImportPath: importPath,
		Fset:       fset,
		Syntax:     []*ast.File{f},
		Types:      tpkg,
		TypesInfo:  info,
	})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// In a deterministic numeric package the un-ignored loop is flagged and the
// //gofmmlint:ignore directive suppresses the second.
func TestIgnoreDirective(t *testing.T) {
	findings := checkAs(t, "gofmm/internal/core")
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 (the ignored loop suppressed): %v", len(findings), findings)
	}
	if f := findings[0]; f.Analyzer != "detorder" || f.Position.Line != 6 {
		t.Fatalf("got %s at line %d, want detorder at line 6", f.Analyzer, f.Position.Line)
	}
}

const reasonlessSrc = `package core

func collect(m map[int]int) []int {
	var out []int
	for k := range m {
		//gofmmlint:ignore detorder
		out = append(out, k)
	}
	return out
}
`

// A directive without a reason suppresses nothing and is itself reported.
func TestReasonlessDirective(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "core.go", reasonlessSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := framework.NewInfo()
	tpkg, err := (&types.Config{}).Check("gofmm/internal/core", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := suite.Run(&load.Package{
		ImportPath: "gofmm/internal/core",
		Fset:       fset,
		Syntax:     []*ast.File{f},
		Types:      tpkg,
		TypesInfo:  info,
	})
	if err != nil {
		t.Fatal(err)
	}
	byAnalyzer := map[string]int{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
	}
	if byAnalyzer["suppression"] != 1 {
		t.Errorf("got %d suppression findings, want 1: %v", byAnalyzer["suppression"], findings)
	}
	if byAnalyzer["detorder"] != 1 {
		t.Errorf("got %d detorder findings, want 1 (reasonless directive must not suppress): %v",
			byAnalyzer["detorder"], findings)
	}
}

// Outside detorder's package set the same code is not checked at all.
func TestPathFilter(t *testing.T) {
	if findings := checkAs(t, "gofmm/cmd/gofmm"); len(findings) != 0 {
		t.Fatalf("detorder applied outside its package set: %v", findings)
	}
}

// The serving layer must sit inside both behavioral nets: ctxcheck (the
// X-Deadline-Ms contract only holds if no handler path mints a fresh
// context root) and errtaxonomy (the 429-vs-503 mapping dispatches on
// errors.Is, so every serve error must wrap a sentinel). This pins the
// path filters so a future carve-out cannot silently drop the package.
func TestServeInsideBehavioralAnalyzers(t *testing.T) {
	covered := map[string]bool{"ctxcheck": false, "errtaxonomy": false}
	for _, e := range suite.All() {
		if _, tracked := covered[e.Analyzer.Name]; tracked && e.AppliesTo("gofmm/internal/serve") {
			covered[e.Analyzer.Name] = true
		}
	}
	for name, ok := range covered {
		if !ok {
			t.Errorf("%s does not apply to gofmm/internal/serve", name)
		}
	}
}
