package experiments

import (
	"io"
	"math/rand"

	"gofmm/internal/core"
	"gofmm/internal/hodlr"
	"gofmm/internal/hss"
	"gofmm/internal/linalg"
)

// Table3 reproduces Table 3 (#13–#18): HODLR vs STRUMPACK-style randomized
// HSS vs GOFMM on K02, K04, K07, K12, K17 and G03, all targeting a similar
// accuracy. The shape to preserve: the lexicographic baselines lose badly on
// permutation-sensitive matrices (the 6-D kernels K04/K07), the HSS sketch
// pays O(N²) compression, and G03 favors GOFMM's sparse correction.
func Table3(w io.Writer, n int, seed int64) []Result {
	cases := []string{"K02", "K04", "K07", "K12", "K17", "G03"}
	header(w, "case", "code", "eps2", "compress(s)", "eval(s)", "avg-rank")
	var out []Result
	r := 64 // right-hand sides (the paper uses 1024 at larger N)
	for _, name := range cases {
		p := GetProblem(name, n, seed)
		dim := p.K.Dim()
		rng := rand.New(rand.NewSource(seed))
		W := linalg.GaussianMatrix(rng, dim, r)
		exactRows := sampleRows(dim, 100, seed+1)
		exact := core.ExactRows(p.K, exactRows, W)
		report := func(code string, compressS, evalS float64, U *linalg.Matrix, avgRank float64) {
			approx := U.RowsGather(exactRows)
			approx.AddScaled(-1, exact)
			eps := approx.FrobeniusNorm() / exact.FrobeniusNorm()
			res := Result{
				Experiment: "table3", Case: name, Scheme: code, N: dim,
				Eps: eps, CompressS: compressS, EvalS: evalS, AvgRank: avgRank,
			}
			out = append(out, res)
			cell(w, "%s", name)
			cell(w, "%s", code)
			cell(w, "%.1e", eps)
			cell(w, "%.3f", compressS)
			cell(w, "%.4f", evalS)
			cell(w, "%.1f", avgRank)
			endRow(w)
		}

		hd := hodlr.Compress(p.K, hodlr.Config{LeafSize: 128, Tol: 1e-6, MaxRank: 256})
		Uhd := hd.Matvec(W)
		report("HODLR", hd.CompressTime, hd.EvalTime, Uhd, hd.AvgRank())

		hs := hss.Compress(p.K, hss.Config{LeafSize: 128, Rank: 128, Tol: 1e-6, Seed: seed})
		Uhs := hs.Matvec(W)
		report("STRUMPACK", hs.CompressTime, hs.EvalTime, Uhs, hs.AvgRank())

		g, err := core.Compress(p.K, core.Config{
			LeafSize: 128, MaxRank: 128, Tol: 1e-6, Kappa: 32, Budget: 0.03,
			Distance: core.Angle, Exec: core.Dynamic, NumWorkers: 2,
			CacheBlocks: true, Seed: seed,
		})
		if err != nil {
			panic(err)
		}
		U := g.Matvec(W)
		gEvalS, _ := g.LastEval()
		report("GOFMM", g.Stats.CompressTime, gEvalS, U, g.Stats.AvgRank)
	}
	return out
}

func sampleRows(n, k int, seed int64) []int {
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	return rng.Perm(n)[:k]
}
