package core

import (
	"context"

	"gofmm/internal/linalg"
)

// Matmat computes U ≈ K·X for an n×r block of right-hand sides — the
// batched form of Matvec. One symbolic traversal and one workspace scope
// serve the whole block, so every N2S/S2S/S2N/L2L kernel runs as an r-wide
// GEMM instead of r GEMV-shaped passes; at r ≥ 16 the register-tiled
// kernels saturate and a single Matmat substantially outruns r Matvec
// calls (see `repro pr4`). Column j of the result is bit-identical to
// Matvec of column j: the passes visit nodes in the same order and each
// kernel accumulates every column with the same reduction order.
// Matmat is the legacy uncancellable entry point; it panics on the errors
// MatmatCtx would return.
func (h *Hierarchical) Matmat(X *linalg.Matrix) *linalg.Matrix {
	U, err := h.MatmatCtx(context.Background(), X)
	if err != nil {
		panic(err)
	}
	return U
}

// MatmatCtx is Matmat with cancellation and typed errors, mirroring
// MatvecCtx. It additionally records the block width distribution in the
// "matmat.width" histogram so a serving deployment can see how well the
// BatchEvaluator is coalescing.
func (h *Hierarchical) MatmatCtx(ctx context.Context, X *linalg.Matrix) (*linalg.Matrix, error) {
	if rec := h.Cfg.Telemetry; rec != nil && X != nil {
		rec.Histogram("matmat.width").Observe(float64(X.Cols))
	}
	if p := h.evalPlan.Load(); p != nil {
		return h.replayBlock(ctx, p, X, "matmat")
	}
	return h.evalBlock(ctx, X, "matmat")
}

// InterpMatmatCtx is MatmatCtx pinned to the tree interpreter, bypassing any
// installed compiled plan — the reference path of the equivalence suite.
func (h *Hierarchical) InterpMatmatCtx(ctx context.Context, X *linalg.Matrix) (*linalg.Matrix, error) {
	if rec := h.Cfg.Telemetry; rec != nil && X != nil {
		rec.Histogram("matmat.width").Observe(float64(X.Cols))
	}
	return h.evalBlock(ctx, X, "matmat")
}
