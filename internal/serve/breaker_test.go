package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"gofmm/internal/resilience"
)

func panicErr() error {
	return &resilience.PanicError{Label: "test", Value: "boom"}
}

// breakerHarness pairs a breaker with a fake clock and a state-transition
// log.
func breakerHarness(cfg BreakerConfig) (*breaker, *fakeClock, *[]BreakerState) {
	clk := newFakeClock()
	var transitions []BreakerState
	b := newBreaker(cfg, clk.now, func(s BreakerState) { transitions = append(transitions, s) })
	return b, clk, &transitions
}

func TestBreakerTripsOnConsecutivePanics(t *testing.T) {
	b, clk, transitions := breakerHarness(BreakerConfig{Threshold: 3, Cooldown: time.Second})

	// Two panics then a success: the consecutive counter resets.
	for i := 0; i < 2; i++ {
		if err := b.allow(); err != nil {
			t.Fatal(err)
		}
		b.record(panicErr())
	}
	if err := b.allow(); err != nil {
		t.Fatal(err)
	}
	b.record(nil)
	if b.current() != BreakerClosed {
		t.Fatalf("breaker tripped below threshold")
	}
	// Three consecutive panics open it.
	for i := 0; i < 3; i++ {
		if err := b.allow(); err != nil {
			t.Fatal(err)
		}
		b.record(panicErr())
	}
	if b.current() != BreakerOpen {
		t.Fatalf("breaker did not open at threshold")
	}
	// While open: typed rejection with the remaining cooldown as hint.
	clk.advance(300 * time.Millisecond)
	err := b.allow()
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted traffic: %v", err)
	}
	if hint, ok := resilience.RetryAfterHint(err); !ok || hint != 700*time.Millisecond {
		t.Fatalf("open hint = %v, %v; want remaining cooldown 700ms", hint, ok)
	}
	// After the cooldown: half-open, one probe admitted, concurrent
	// requests rejected while the probe is in flight.
	clk.advance(time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if b.current() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.current())
	}
	if err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe admitted: %v", err)
	}
	// Probe succeeds: closed again, traffic flows.
	b.record(nil)
	if b.current() != BreakerClosed {
		t.Fatalf("successful probe did not close the breaker")
	}
	if err := b.allow(); err != nil {
		t.Fatal(err)
	}
	b.record(nil)
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(*transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", *transitions, want)
	}
	for i, s := range want {
		if (*transitions)[i] != s {
			t.Fatalf("transitions = %v, want %v", *transitions, want)
		}
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk, _ := breakerHarness(BreakerConfig{Threshold: 1, Cooldown: time.Second})
	if err := b.allow(); err != nil {
		t.Fatal(err)
	}
	b.record(panicErr()) // threshold 1: opens immediately
	clk.advance(time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.record(panicErr())
	if b.current() != BreakerOpen {
		t.Fatalf("failed probe did not reopen")
	}
	// The cooldown clock restarted at the failed probe.
	clk.advance(900 * time.Millisecond)
	if err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("reopened breaker admitted early: %v", err)
	}
	clk.advance(200 * time.Millisecond)
	if err := b.allow(); err != nil {
		t.Fatalf("second probe window rejected: %v", err)
	}
	b.record(nil)
	if b.current() != BreakerClosed {
		t.Fatalf("recovered probe did not close")
	}
}

// Stalls count as trippable; cancellations, overload sheds, and invalid
// input are neutral in every state.
func TestBreakerErrorClassification(t *testing.T) {
	b, _, _ := breakerHarness(BreakerConfig{Threshold: 2, Cooldown: time.Second})
	stall := resilience.ErrStalled
	neutral := []error{
		resilience.FromContext(canceledCtx()),
		ErrOverloaded,
		resilience.ErrInvalidInput,
	}
	if err := b.allow(); err != nil {
		t.Fatal(err)
	}
	b.record(stall)
	for _, err := range neutral {
		if aerr := b.allow(); aerr != nil {
			t.Fatal(aerr)
		}
		b.record(err)
	}
	if b.current() != BreakerClosed {
		t.Fatalf("neutral errors moved the breaker")
	}
	if err := b.allow(); err != nil {
		t.Fatal(err)
	}
	b.record(stall)
	// Neutral errors must also not have reset the consecutive count:
	// stall + neutrals + stall ... the count survives neutral outcomes.
	if b.current() != BreakerOpen {
		t.Fatalf("two stalls (with neutral noise between) did not open the breaker")
	}
}

// A neutral outcome on the half-open probe frees the probe slot without
// closing or reopening.
func TestBreakerNeutralProbe(t *testing.T) {
	b, clk, _ := breakerHarness(BreakerConfig{Threshold: 1, Cooldown: time.Second})
	if err := b.allow(); err != nil {
		t.Fatal(err)
	}
	b.record(panicErr())
	clk.advance(time.Second)
	if err := b.allow(); err != nil {
		t.Fatal(err)
	}
	b.record(resilience.FromContext(canceledCtx())) // probe cancelled: neutral
	if b.current() != BreakerHalfOpen {
		t.Fatalf("neutral probe changed state to %v", b.current())
	}
	if err := b.allow(); err != nil {
		t.Fatalf("probe slot not freed after neutral outcome: %v", err)
	}
	b.record(nil)
	if b.current() != BreakerClosed {
		t.Fatalf("probe success after neutral did not close")
	}
}

func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}
