package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"gofmm/internal/core"
	"gofmm/internal/hss"
	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/telemetry"
)

// EvalFunc is one evaluation entry point of an operator: U = f(ctx, W).
// The serving layer treats it as untrusted — panics are contained and
// converted to *resilience.PanicError at the call site.
type EvalFunc func(ctx context.Context, W *linalg.Matrix) (*linalg.Matrix, error)

// OperatorSpec describes one servable operator. Matvec is required; Matmat
// and Solve are optional (requests for absent operations get
// ErrUnsupported). Close, when set, is invoked during Registry.Close /
// server drain — it is where a BatchEvaluator performs its final flush.
type OperatorSpec struct {
	Name   string
	Dim    int
	Matvec EvalFunc
	Matmat EvalFunc
	Solve  EvalFunc
	Close  func()
}

// Limits bundles the per-operator protection configuration.
type Limits struct {
	Admission AdmissionConfig
	Breaker   BreakerConfig
}

// Operator is a registered operator wrapped in its protection stack:
// breaker → admission → panic-contained evaluation. All methods are safe
// for concurrent use.
//
// Every evaluation pins the operator with a reference; Swap and Deregister
// retire it instead of closing it, so in-flight evaluations finish on the
// operator they started on and Close (evaluator flush, store unmap) fires
// only when the last one releases. A call entering through a stale handle
// after retirement is forwarded to the current registration of the same
// name, so swapping is invisible to clients.
type Operator struct {
	spec OperatorSpec
	adm  *admission
	brk  *breaker
	rec  *telemetry.Recorder
	reg  *Registry

	lifeMu  sync.Mutex
	refs    int  // guarded by lifeMu
	retired bool // guarded by lifeMu

	closeOnce sync.Once
}

// acquire pins the operator for one evaluation; false once retired.
func (o *Operator) acquire() bool {
	o.lifeMu.Lock()
	defer o.lifeMu.Unlock()
	if o.retired {
		return false
	}
	o.refs++
	return true
}

// release drops one evaluation pin, firing Close if this was the last
// in-flight evaluation of a retired operator.
func (o *Operator) release() {
	o.lifeMu.Lock()
	o.refs--
	last := o.retired && o.refs == 0
	o.lifeMu.Unlock()
	if last {
		o.close()
	}
}

// retire removes the operator from service: no new evaluations are
// admitted, and Close fires as soon as the in-flight ones drain
// (immediately when idle).
func (o *Operator) retire() {
	o.lifeMu.Lock()
	o.retired = true
	idle := o.refs == 0
	o.lifeMu.Unlock()
	if idle {
		o.close()
	}
}

// Registry is a named set of servable operators sharing one telemetry
// recorder. The registry owns operator lifecycle: Close drains every
// operator's evaluator exactly once.
type Registry struct {
	rec *telemetry.Recorder

	mu  sync.RWMutex
	ops map[string]*Operator // guarded by mu
}

// NewRegistry builds an empty registry publishing serve.* metrics to rec
// (nil disables recording).
func NewRegistry(rec *telemetry.Recorder) *Registry {
	return &Registry{rec: rec, ops: map[string]*Operator{}}
}

// newOperator validates spec and builds the protection stack.
func (r *Registry) newOperator(spec OperatorSpec, lim Limits) (*Operator, error) {
	if spec.Name == "" || spec.Matvec == nil || spec.Dim <= 0 {
		return nil, fmt.Errorf("%w: serve: operator needs a name, a positive dim and a Matvec",
			resilience.ErrInvalidInput)
	}
	op := &Operator{spec: spec, adm: newAdmission(lim.Admission), rec: r.rec, reg: r}
	op.brk = newBreaker(lim.Breaker, nil, func(BreakerState) { r.publishBreakerState() })
	return op, nil
}

// Register adds an operator under spec.Name. Re-registering a live name is
// an error — replacing a serving operator is Swap's job, and removal is
// Deregister's.
func (r *Registry) Register(spec OperatorSpec, lim Limits) (*Operator, error) {
	op, err := r.newOperator(spec, lim)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.ops[spec.Name]; dup {
		return nil, fmt.Errorf("%w: serve: operator %q already registered",
			resilience.ErrInvalidInput, spec.Name)
	}
	r.ops[spec.Name] = op
	return op, nil
}

// Swap atomically installs spec under spec.Name, replacing any current
// registration. The old operator is retired, not closed: evaluations
// already running on it finish and its Close (evaluator flush, and for
// store-loaded operators the munmap) fires only after the last one
// releases. Requests that raced the swap through a stale handle forward to
// the replacement. Installing a previously unused name is allowed — Swap
// then behaves like Register.
func (r *Registry) Swap(spec OperatorSpec, lim Limits) (*Operator, error) {
	op, err := r.newOperator(spec, lim)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	old := r.ops[spec.Name]
	r.ops[spec.Name] = op
	r.mu.Unlock()
	swaps := r.rec.Counter("store.swaps") // created eagerly so the metric is always exposed
	if old != nil {
		old.retire()
		swaps.Add(1)
	}
	return op, nil
}

// Deregister removes name from service. In-flight evaluations finish on the
// removed operator before its Close fires; subsequent requests get
// ErrUnknownOperator.
func (r *Registry) Deregister(name string) error {
	r.mu.Lock()
	op, ok := r.ops[name]
	delete(r.ops, name)
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownOperator, name)
	}
	op.retire()
	return nil
}

// hierarchicalSpec builds the standard serving wiring for a compressed
// operator: Matvec through a coalescing BatchEvaluator (the admission
// gate's concurrency becomes Matmat width), Matmat direct, and — for
// HSS-shaped compressions (Budget 0) with a live entry oracle — Solve
// through a hierarchical factorization built eagerly here so the first
// solve request does not pay it. Operators loaded from the store have no
// oracle to factor from, so they serve matvec/matmat only. The spec's
// Close flushes the evaluator and releases the operator's backing store
// file (unmapping it, when the load was mmap-served) — an operator whose
// Close has fired has left service for good.
func (r *Registry) hierarchicalSpec(ctx context.Context, name string, h *core.Hierarchical, opts core.BatchOptions) (OperatorSpec, error) {
	// Compile the flat evaluation plan up front so every served matvec and
	// matmat replays the compiled schedule instead of re-walking the tree
	// (idempotent: a no-op when a plan is already installed, including one
	// reinstalled by core.LoadFrom).
	if _, err := h.CompilePlanCtx(ctx); err != nil {
		return OperatorSpec{}, fmt.Errorf("serve: operator %q: %w", name, err)
	}
	ev := h.NewBatchEvaluatorCtx(ctx, opts)
	spec := OperatorSpec{
		Name:   name,
		Dim:    h.N(),
		Matvec: ev.Matvec,
		Matmat: h.MatmatCtx,
		Close: func() {
			ev.Close()
			if err := h.ReleaseStore(); err != nil {
				if l := r.rec.Logger(); l != nil {
					l.Warn("serve: releasing operator store failed", "operator", name, "err", err.Error())
				}
			}
		},
	}
	if h.IsHSS() && h.HasOracle() {
		hs, err := hss.FromGOFMM(h)
		if err != nil {
			ev.Close()
			return OperatorSpec{}, fmt.Errorf("serve: operator %q: %w", name, err)
		}
		f, err := hs.FactorCtx(ctx)
		if err != nil {
			ev.Close()
			return OperatorSpec{}, fmt.Errorf("serve: operator %q: %w", name, err)
		}
		spec.Solve = f.SolveCtx
	}
	return spec, nil
}

// RegisterHierarchical registers a compressed operator with the standard
// wiring (see hierarchicalSpec). Re-registering a live name is an error;
// use SwapHierarchical to replace one in flight.
func (r *Registry) RegisterHierarchical(ctx context.Context, name string, h *core.Hierarchical, opts core.BatchOptions, lim Limits) (*Operator, error) {
	spec, err := r.hierarchicalSpec(ctx, name, h, opts)
	if err != nil {
		return nil, err
	}
	op, err := r.Register(spec, lim)
	if err != nil {
		spec.Close()
		return nil, err
	}
	return op, nil
}

// SwapHierarchical hot-swaps a compressed operator into the name with the
// standard wiring (see hierarchicalSpec and Swap): the previous operator
// keeps serving its in-flight evaluations and is closed — flushing its
// evaluator and unmapping its store file — only after the last one ends.
func (r *Registry) SwapHierarchical(ctx context.Context, name string, h *core.Hierarchical, opts core.BatchOptions, lim Limits) (*Operator, error) {
	spec, err := r.hierarchicalSpec(ctx, name, h, opts)
	if err != nil {
		return nil, err
	}
	op, err := r.Swap(spec, lim)
	if err != nil {
		spec.Close()
		return nil, err
	}
	return op, nil
}

// Get resolves a registered operator by name.
func (r *Registry) Get(name string) (*Operator, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	op, ok := r.ops[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownOperator, name)
	}
	return op, nil
}

// Names lists the registered operators in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.ops))
	for name := range r.ops {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Close retires every operator: each one's evaluator drains and flushes as
// soon as its in-flight evaluations end (immediately when idle). Idempotent
// per operator.
func (r *Registry) Close() {
	r.mu.RLock()
	ops := make([]*Operator, 0, len(r.ops))
	for _, op := range r.ops {
		ops = append(ops, op)
	}
	r.mu.RUnlock()
	for _, op := range ops {
		op.retire()
	}
}

// publishBreakerState sets the serve.breaker_state gauge to the most
// degraded state across all registered operators (open=1 beats
// half-open=2 beats closed=0 in severity ordering open > half-open >
// closed; the gauge carries the numeric BreakerState of the worst one).
func (r *Registry) publishBreakerState() {
	r.mu.RLock()
	worst := BreakerClosed
	rank := func(s BreakerState) int {
		switch s {
		case BreakerOpen:
			return 2
		case BreakerHalfOpen:
			return 1
		default:
			return 0
		}
	}
	for _, op := range r.ops {
		if rank(op.brk.current()) > rank(worst) {
			worst = op.brk.current()
		}
	}
	r.mu.RUnlock()
	r.rec.Gauge("serve.breaker_state").Set(float64(worst))
}

// Name returns the operator's registered name.
func (o *Operator) Name() string { return o.spec.Name }

// Dim returns the operator's dimension.
func (o *Operator) Dim() int { return o.spec.Dim }

// CanSolve reports whether the operator registered a Solve path.
func (o *Operator) CanSolve() bool { return o.spec.Solve != nil }

// CanMatmat reports whether the operator registered a Matmat path.
func (o *Operator) CanMatmat() bool { return o.spec.Matmat != nil }

// BreakerState returns the operator's current breaker state.
func (o *Operator) BreakerState() BreakerState { return o.brk.current() }

func (o *Operator) close() {
	o.closeOnce.Do(func() {
		if o.spec.Close != nil {
			o.spec.Close()
		}
	})
}

// Matvec serves one matvec request through the protection stack.
func (o *Operator) Matvec(ctx context.Context, W *linalg.Matrix) (*linalg.Matrix, error) {
	return o.dispatch(ctx, "matvec", W)
}

// Matmat serves one multi-RHS request through the protection stack.
func (o *Operator) Matmat(ctx context.Context, X *linalg.Matrix) (*linalg.Matrix, error) {
	return o.dispatch(ctx, "matmat", X)
}

// Solve serves one solve request through the protection stack.
func (o *Operator) Solve(ctx context.Context, B *linalg.Matrix) (*linalg.Matrix, error) {
	return o.dispatch(ctx, "solve", B)
}

// dispatch pins an operator and runs the evaluation on it. When the handle
// is already retired (the caller resolved it just before a Swap or
// Deregister landed), the call follows the registry to the current
// registration of the same name — a swap never fails a request, and only
// a deregistered name surfaces ErrUnknownOperator.
func (o *Operator) dispatch(ctx context.Context, what string, W *linalg.Matrix) (*linalg.Matrix, error) {
	cur := o
	for hop := 0; hop < 8; hop++ {
		if cur.acquire() {
			return cur.do(ctx, what, W)
		}
		if cur.reg == nil {
			break
		}
		next, err := cur.reg.Get(cur.spec.Name)
		if err != nil {
			return nil, err
		}
		if next == cur {
			break
		}
		cur = next
	}
	return nil, fmt.Errorf("%w: %q (retired)", ErrUnknownOperator, o.spec.Name)
}

// do runs one pinned evaluation through breaker → admission → contained
// eval, maintaining the serve.{admitted,shed} counters and feeding every
// outcome back to the breaker. Exactly one brk.record is paired with each
// successful brk.allow, including on the shed and cancellation paths
// (those outcomes are neutral to the breaker's health accounting). The
// caller must have pinned o with acquire; do releases the pin.
func (o *Operator) do(ctx context.Context, what string, W *linalg.Matrix) (U *linalg.Matrix, err error) {
	defer o.release()
	var eval EvalFunc
	switch what {
	case "matvec":
		eval = o.spec.Matvec
	case "matmat":
		eval = o.spec.Matmat
	case "solve":
		eval = o.spec.Solve
	}
	if eval == nil {
		return nil, fmt.Errorf("%w: operator %q has no %s", ErrUnsupported, o.spec.Name, what)
	}
	if err := resilience.FromContext(ctx); err != nil {
		return nil, err
	}
	if err := o.brk.allow(); err != nil {
		o.rec.Counter("serve.breaker_rejects").Add(1)
		return nil, err
	}
	defer func() { o.brk.record(err) }()
	if err = o.adm.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			o.rec.Counter("serve.shed").Add(1)
		}
		return nil, err
	}
	defer o.adm.release()
	o.rec.Counter("serve.admitted").Add(1)
	running, queued := o.adm.depth()
	o.rec.Gauge("serve.executing").Set(float64(running))
	o.rec.Gauge("serve.queue_depth").Set(float64(queued))
	start := time.Now()
	U, err = o.evalContained(ctx, what, eval, W)
	o.rec.Histogram("serve.latency_ms").Observe(time.Since(start).Seconds() * 1e3)
	if err != nil {
		o.rec.Counter("serve.errors").Add(1)
	}
	return U, err
}

// evalContained invokes eval with a panic backstop: a panicking operator
// (poisoned oracle, kernel bug) must cost exactly the requests it served,
// never the serving goroutine or the process. The panic becomes a typed
// *resilience.PanicError that the breaker counts toward tripping and the
// flight recorder captures via the crash funnel.
func (o *Operator) evalContained(ctx context.Context, what string, eval EvalFunc, W *linalg.Matrix) (U *linalg.Matrix, err error) {
	defer func() {
		if r := recover(); r != nil {
			perr := &resilience.PanicError{
				Label: "serve." + o.spec.Name + "." + what,
				Value: r,
				Stack: debug.Stack(),
			}
			tid, _ := telemetry.TraceIDFrom(ctx)
			o.rec.ReportCrash(perr.Label, tid, perr)
			U, err = nil, perr
		}
	}()
	return eval(ctx, W)
}
