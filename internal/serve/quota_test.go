package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gofmm/internal/resilience"
)

// fakeClock is a deterministic quota clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)}
}

func TestQuotaBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	q := newQuotas(QuotaConfig{RatePerSec: 2, Burst: 4}, clk.now)

	// The burst admits 4 columns instantaneously.
	for i := 0; i < 4; i++ {
		if err := q.allow("alice", 1); err != nil {
			t.Fatalf("burst request %d rejected: %v", i, err)
		}
	}
	// The fifth is rejected with a hint of (1 token)/(2 tokens/s) = 500ms.
	err := q.allow("alice", 1)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("want ErrQuotaExceeded, got %v", err)
	}
	hint, ok := resilience.RetryAfterHint(err)
	if !ok || hint != 500*time.Millisecond {
		t.Fatalf("refill hint = %v, %v; want 500ms", hint, ok)
	}
	// Another tenant is unaffected.
	if err := q.allow("bob", 4); err != nil {
		t.Fatalf("independent tenant throttled: %v", err)
	}
	// After one second, 2 tokens returned.
	clk.advance(time.Second)
	if err := q.allow("alice", 2); err != nil {
		t.Fatalf("refilled request rejected: %v", err)
	}
	if err := q.allow("alice", 1); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("bucket should be empty again, got %v", err)
	}
	// Refill caps at Burst no matter how long the idle period.
	clk.advance(time.Hour)
	if err := q.allow("alice", 4); err != nil {
		t.Fatalf("capped refill rejected: %v", err)
	}
	if err := q.allow("alice", 1); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("burst cap not enforced, got %v", err)
	}
}

// A request that cannot ever fit the bucket must be a permanent
// invalid-input error, not a retry hint that would lie.
func TestQuotaOversizedRequest(t *testing.T) {
	q := newQuotas(QuotaConfig{RatePerSec: 10, Burst: 8}, newFakeClock().now)
	err := q.allow("alice", 9)
	if !errors.Is(err, resilience.ErrInvalidInput) {
		t.Fatalf("want ErrInvalidInput, got %v", err)
	}
	if _, ok := resilience.RetryAfterHint(err); ok {
		t.Fatalf("oversized request must not carry a retry hint")
	}
}

// The bucket table is bounded: tenant number MaxTenants+1 evicts the
// stalest bucket rather than growing without limit.
func TestQuotaTenantTableBounded(t *testing.T) {
	clk := newFakeClock()
	q := newQuotas(QuotaConfig{RatePerSec: 1, Burst: 1, MaxTenants: 8}, clk.now)
	for i := 0; i < 64; i++ {
		clk.advance(time.Millisecond) // distinct staleness stamps
		if err := q.allow(fmt.Sprintf("tenant-%d", i), 1); err != nil {
			t.Fatalf("tenant %d rejected: %v", i, err)
		}
	}
	if got := q.tenants(); got > 8 {
		t.Fatalf("bucket table grew to %d, bound is 8", got)
	}
}

// Disabled quotas and the nil table admit everything.
func TestQuotaDisabled(t *testing.T) {
	q := newQuotas(QuotaConfig{}, nil)
	for i := 0; i < 100; i++ {
		if err := q.allow("anyone", 100); err != nil {
			t.Fatalf("disabled quota rejected: %v", err)
		}
	}
	var nilQ *quotas
	if err := nilQ.allow("anyone", 1); err != nil {
		t.Fatalf("nil quotas rejected: %v", err)
	}
	if nilQ.tenants() != 0 {
		t.Fatalf("nil quotas report tenants")
	}
}
