package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"gofmm/internal/linalg"
	"gofmm/internal/plan"
	"gofmm/internal/tree"
	"gofmm/internal/workspace"
)

// Evaluator owns reusable evaluation workspaces for repeated matvecs with a
// fixed number of right-hand sides — the iterative-solver workload (CG,
// block Krylov, Monte Carlo sampling) where per-call allocation would
// otherwise dominate at small r. Every buffer and every submatrix view the
// four passes touch is precomputed at construction, so a steady-state
// MatvecInto performs no heap allocation at all (when the blocks are cached;
// an uncached evaluation still gathers K blocks on the fly). When
// Config.Workspace is set the buffers are drawn from the pool and returned
// by Close.
type Evaluator struct {
	h     *Hierarchical
	r     int
	st    *evalState
	scope *workspace.Scope

	// plan, when non-nil, is the compiled schedule this evaluator replays;
	// the per-node views below stay nil (the plan's replay state carries
	// its own prebuilt operand headers and pooled arena).
	plan *plan.Plan

	// Precomputed per-node views into the evalState buffers (nil where a
	// node has no such role). Views are headers only — they alias st's
	// storage and are never returned to the pool.
	leafW      []*linalg.Matrix   // leaf rows of Wt
	leafU      []*linalg.Matrix   // leaf rows of Ufar (S2N output)
	nearU      []*linalg.Matrix   // leaf rows of Unear (L2L output)
	fromParent []*linalg.Matrix   // this node's slice of down[parent]
	stacked    []*linalg.Matrix   // interior N2S input buffer [w̃l; w̃r]
	stackTop   []*linalg.Matrix   // top rows of stacked (copy of w̃l)
	stackBot   []*linalg.Matrix   // bottom rows of stacked (copy of w̃r)
	nearW      [][]*linalg.Matrix // per near pair: source rows of Wt
}

// NewEvaluator prepares workspaces for Matvec calls with r right-hand sides.
// With a compiled plan installed (CompilePlanCtx) the evaluator is a thin
// replay handle: construction is O(1) and MatvecInto replays the flat
// schedule through a pooled arena instead of the per-node views below.
func (h *Hierarchical) NewEvaluator(r int) *Evaluator {
	if p := h.evalPlan.Load(); p != nil {
		return &Evaluator{h: h, r: r, scope: h.Cfg.Workspace.NewScope(), plan: p}
	}
	n := h.K.Dim()
	t := h.Tree
	scope := h.Cfg.Workspace.NewScope()
	st := &evalState{
		r:     r,
		Wt:    scope.Matrix(n, r),
		Unear: scope.Matrix(n, r),
		Ufar:  scope.Matrix(n, r),
		skelW: make([]*linalg.Matrix, len(t.Nodes)),
		skelU: make([]*linalg.Matrix, len(t.Nodes)),
		down:  make([]*linalg.Matrix, len(t.Nodes)),
	}
	e := &Evaluator{
		h:          h,
		r:          r,
		st:         st,
		scope:      scope,
		leafW:      make([]*linalg.Matrix, len(t.Nodes)),
		leafU:      make([]*linalg.Matrix, len(t.Nodes)),
		nearU:      make([]*linalg.Matrix, len(t.Nodes)),
		fromParent: make([]*linalg.Matrix, len(t.Nodes)),
		stacked:    make([]*linalg.Matrix, len(t.Nodes)),
		stackTop:   make([]*linalg.Matrix, len(t.Nodes)),
		stackBot:   make([]*linalg.Matrix, len(t.Nodes)),
		nearW:      make([][]*linalg.Matrix, len(t.Nodes)),
	}
	// Pre-size the per-node buffers from the known skeleton ranks.
	for id := range t.Nodes {
		s := len(h.nodes[id].skel)
		if h.nodes[id].proj != nil {
			st.skelW[id] = scope.Matrix(h.nodes[id].proj.Rows, r)
		}
		if s > 0 {
			st.skelU[id] = scope.Matrix(s, r)
		}
		if !t.IsLeaf(id) && h.nodes[id].proj != nil {
			st.down[id] = scope.Matrix(h.nodes[id].proj.Cols, r)
		}
	}
	// Precompute every view the passes need.
	for id := range t.Nodes {
		tn := &t.Nodes[id]
		if t.IsLeaf(id) {
			e.leafW[id] = st.Wt.View(tn.Lo, 0, tn.Size(), r)
			e.leafU[id] = st.Ufar.View(tn.Lo, 0, tn.Size(), r)
			e.nearU[id] = st.Unear.View(tn.Lo, 0, tn.Size(), r)
			near := h.nodes[id].near
			views := make([]*linalg.Matrix, len(near))
			for k, alpha := range near {
				ta := &t.Nodes[alpha]
				views[k] = st.Wt.View(ta.Lo, 0, ta.Size(), r)
			}
			e.nearW[id] = views
		} else if h.nodes[id].proj != nil {
			wl, wr := st.skelW[t.Left(id)], st.skelW[t.Right(id)]
			ra, rb := 0, 0
			if wl != nil {
				ra = wl.Rows
			}
			if wr != nil {
				rb = wr.Rows
			}
			buf := scope.Matrix(ra+rb, r)
			e.stacked[id] = buf
			if ra > 0 {
				e.stackTop[id] = buf.View(0, 0, ra, r)
			}
			if rb > 0 {
				e.stackBot[id] = buf.View(ra, 0, rb, r)
			}
		}
		if p := t.Parent(id); p >= 0 && st.down[p] != nil {
			ls := len(h.nodes[t.Left(p)].skel)
			if id == t.Left(p) {
				if ls > 0 {
					e.fromParent[id] = st.down[p].View(0, 0, ls, r)
				}
			} else if st.down[p].Rows-ls > 0 {
				e.fromParent[id] = st.down[p].View(ls, 0, st.down[p].Rows-ls, r)
			}
		}
	}
	return e
}

// Close returns the evaluator's buffers to the configured workspace pool
// (no-op without one). The evaluator must not be used afterwards.
func (e *Evaluator) Close() { e.scope.Release() }

// Matvec computes U ≈ K·W into a fresh output using the pre-allocated
// workspaces. W must have exactly the configured number of columns.
func (e *Evaluator) Matvec(W *linalg.Matrix) *linalg.Matrix {
	U := linalg.NewMatrix(e.h.K.Dim(), e.r)
	e.MatvecInto(W, U)
	return U
}

// MatvecInto computes U ≈ K·W into the caller-provided U (n×r), allocating
// nothing in steady state. W and U may not alias.
func (e *Evaluator) MatvecInto(W, U *linalg.Matrix) {
	h := e.h
	n := h.K.Dim()
	if W.Rows != n || W.Cols != e.r {
		panic(fmt.Sprintf("core: Evaluator.Matvec with %d×%d input, want %d×%d", W.Rows, W.Cols, n, e.r))
	}
	if U.Rows != n || U.Cols != e.r {
		panic(fmt.Sprintf("core: Evaluator.Matvec with %d×%d output, want %d×%d", U.Rows, U.Cols, n, e.r))
	}
	start := time.Now()
	if e.plan != nil {
		opts := plan.ExecOptions{Workers: 1, Pool: h.Cfg.Workspace, Telemetry: h.Cfg.Telemetry}
		if err := e.plan.Execute(nil, W, U, opts); err != nil {
			panic(err) // dims were validated above; replay itself cannot fail
		}
		h.noteEval(time.Since(start).Seconds(), e.plan.FlopsPerCol()*float64(e.r))
		return
	}
	t := h.Tree
	st := e.st
	// Reset workspaces in place (column-wise gather for cache locality).
	for c := 0; c < e.r; c++ {
		src := W.Col(c)
		dst := st.Wt.Col(c)
		for pos, orig := range t.Perm {
			dst[pos] = src[orig]
		}
	}
	st.Unear.Zero()
	st.Ufar.Zero()
	for id := range t.Nodes {
		if st.skelU[id] != nil {
			st.skelU[id].Zero()
		}
	}
	// The kernels overwrite skelW/down (Gemm with beta 0); s2sInto relies on
	// skelU being zeroed above. All submatrix views were precomputed in
	// NewEvaluator, so the four passes below allocate nothing.
	t.PostOrder(func(nd *tree.Node) { e.n2sInto(nd.ID) })
	for id := range t.Nodes {
		h.s2sInto(st, id)
	}
	t.PreOrder(func(nd *tree.Node) { e.s2nInto(nd.ID) })
	for _, beta := range t.Leaves() {
		e.l2lInto(beta)
	}
	st.Ufar.AddScaled(1, st.Unear)
	st.Ufar.RowsGatherInto(t.IPerm, U)
	h.noteEval(time.Since(start).Seconds(), float64(atomic.LoadInt64(&h.evalFlops)))
}

// n2sInto is n2s with pre-allocated outputs and a pre-allocated stacking
// buffer for interior nodes.
func (e *Evaluator) n2sInto(id int) {
	h := e.h
	st := e.st
	nd := &h.nodes[id]
	if nd.proj == nil || st.skelW[id] == nil {
		return
	}
	t := h.Tree
	out := st.skelW[id]
	if t.IsLeaf(id) {
		linalg.Gemm(false, false, 1, nd.proj, e.leafW[id], 0, out)
	} else {
		if v := e.stackTop[id]; v != nil {
			v.CopyFrom(st.skelW[t.Left(id)])
		}
		if v := e.stackBot[id]; v != nil {
			v.CopyFrom(st.skelW[t.Right(id)])
		}
		linalg.Gemm(false, false, 1, nd.proj, e.stacked[id], 0, out)
	}
	h.addEvalFlops(2 * float64(out.Rows) * float64(nd.proj.Cols) * float64(st.r))
}

// s2sInto accumulates into the pre-zeroed skelU buffer.
func (h *Hierarchical) s2sInto(st *evalState, id int) {
	nd := &h.nodes[id]
	if len(nd.far) == 0 || st.skelU[id] == nil {
		return
	}
	acc := st.skelU[id]
	for k, alpha := range nd.far {
		wa := st.skelW[alpha]
		if wa == nil || wa.Rows == 0 {
			continue
		}
		if nd.cacheFar32 != nil {
			b := nd.cacheFar32[k]
			linalg.GemmMixed(1, b, wa, 1, acc)
			h.addEvalFlops(2 * float64(b.Rows) * float64(b.Cols) * float64(st.r))
			continue
		}
		var block *linalg.Matrix
		if nd.cacheFar != nil {
			block = nd.cacheFar[k]
		} else {
			block = NewGathered(h.K, nd.skel, h.nodes[alpha].skel)
		}
		linalg.Gemm(false, false, 1, block, wa, 1, acc)
		h.addEvalFlops(2 * float64(block.Rows) * float64(block.Cols) * float64(st.r))
	}
}

// s2nInto is s2n with pre-allocated down buffers and precomputed views.
func (e *Evaluator) s2nInto(id int) {
	h := e.h
	st := e.st
	t := h.Tree
	nd := &h.nodes[id]
	if part := e.fromParent[id]; part != nil && st.skelU[id] != nil {
		st.skelU[id].AddScaled(1, part)
	}
	u := st.skelU[id]
	if u == nil || u.Rows == 0 || nd.proj == nil {
		return
	}
	if t.IsLeaf(id) {
		linalg.Gemm(true, false, 1, nd.proj, u, 1, e.leafU[id])
		h.addEvalFlops(2 * float64(nd.proj.Rows) * float64(nd.proj.Cols) * float64(st.r))
	} else if st.down[id] != nil {
		linalg.Gemm(true, false, 1, nd.proj, u, 0, st.down[id])
		h.addEvalFlops(2 * float64(nd.proj.Rows) * float64(nd.proj.Cols) * float64(st.r))
	}
}

// l2lInto is l2l with precomputed input/output views; only the uncached
// block path still allocates (it must gather K entries somewhere).
func (e *Evaluator) l2lInto(beta int) {
	h := e.h
	st := e.st
	nd := &h.nodes[beta]
	uview := e.nearU[beta]
	for k, alpha := range nd.near {
		wview := e.nearW[beta][k]
		if nd.cacheNear32 != nil {
			b := nd.cacheNear32[k]
			linalg.GemmMixed(1, b, wview, 1, uview)
			h.addEvalFlops(2 * float64(b.Rows) * float64(b.Cols) * float64(st.r))
			continue
		}
		var block *linalg.Matrix
		if nd.cacheNear != nil {
			block = nd.cacheNear[k]
		} else {
			block = NewGathered(h.K, h.Tree.Indices(beta), h.Tree.Indices(alpha))
		}
		linalg.Gemm(false, false, 1, block, wview, 1, uview)
		h.addEvalFlops(2 * float64(block.Rows) * float64(block.Cols) * float64(st.r))
	}
}
