package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gofmm/internal/core"
	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/spdmat"
	"gofmm/internal/telemetry"
	"gofmm/internal/telemetry/live"
)

// testOperator compresses a small HSS-shaped problem once per test binary;
// the compression is deterministic, so sharing it across tests is safe.
var (
	testOpOnce sync.Once
	testOpH    *core.Hierarchical
	testOpErr  error
)

func compressedOperator(t *testing.T) *core.Hierarchical {
	t.Helper()
	testOpOnce.Do(func() {
		p, err := spdmat.Generate("K02", 256, 1)
		if err != nil {
			testOpErr = err
			return
		}
		testOpH, testOpErr = core.Compress(p.K, core.Config{
			LeafSize: 32, MaxRank: 32, Tol: 1e-6, Kappa: 8, Budget: 0,
			Exec: core.Sequential, NumWorkers: 2, Seed: 1, CacheBlocks: true,
		})
		if testOpErr == nil {
			// Compile the plan up front: registered operators always serve
			// the compiled replay (hierarchicalSpec compiles eagerly), so
			// direct h.Matvec references in tests must take the same path
			// regardless of which test touches the shared operator first.
			_, testOpErr = testOpH.CompilePlan()
		}
	})
	if testOpErr != nil {
		t.Fatalf("compressing test operator: %v", testOpErr)
	}
	return testOpH
}

// newTestServer stands up a full serving stack over the shared compressed
// operator plus any extra specs, with quotas driven by the fake clock.
func newTestServer(t *testing.T, quota QuotaConfig, lim Limits, extra ...OperatorSpec) (*Server, *Registry, *telemetry.Recorder, *fakeClock) {
	t.Helper()
	rec := telemetry.New()
	reg := NewRegistry(rec)
	h := compressedOperator(t)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if _, err := reg.RegisterHierarchical(ctx, "main", h,
		core.BatchOptions{MaxBatch: 8, MaxDelay: 100 * time.Microsecond}, lim); err != nil {
		t.Fatal(err)
	}
	for _, spec := range extra {
		if _, err := reg.Register(spec, lim); err != nil {
			t.Fatal(err)
		}
	}
	clk := newFakeClock()
	s, err := NewServer(Config{
		Registry:  reg,
		Telemetry: rec,
		Quota:     quota,
		Now:       clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	return s, reg, rec, clk
}

func postJSON(t *testing.T, client *http.Client, url string, body any, hdr map[string]string) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil && err != io.EOF {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, doc
}

func floats(t *testing.T, raw json.RawMessage) []float64 {
	t.Helper()
	var out []float64
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestServeMatvecMatmatSolveCorrectness(t *testing.T) {
	s, _, _, _ := newTestServer(t, QuotaConfig{}, Limits{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	h := compressedOperator(t)
	n := h.N()
	rng := rand.New(rand.NewSource(3))
	W := linalg.GaussianMatrix(rng, n, 2)
	want := h.Matvec(W)

	// matvec (JSON vector in, vector out).
	resp, doc := postJSON(t, ts.Client(), ts.URL+"/v1/operators/main/matvec",
		map[string]any{"vector": W.Col(0)}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matvec status %d", resp.StatusCode)
	}
	got := floats(t, doc["vector"])
	for i, v := range got {
		if math.Abs(v-want.At(i, 0)) > 1e-10 {
			t.Fatalf("matvec[%d] = %g, want %g", i, v, want.At(i, 0))
		}
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("no trace ID minted")
	}

	// matmat (columns in, columns out).
	cols := [][]float64{append([]float64(nil), W.Col(0)...), append([]float64(nil), W.Col(1)...)}
	resp, doc = postJSON(t, ts.Client(), ts.URL+"/v1/operators/main/matmat",
		map[string]any{"columns": cols}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matmat status %d", resp.StatusCode)
	}
	var gotCols [][]float64
	if err := json.Unmarshal(doc["columns"], &gotCols); err != nil {
		t.Fatal(err)
	}
	for j := range gotCols {
		for i, v := range gotCols[j] {
			if math.Abs(v-want.At(i, j)) > 1e-10 {
				t.Fatalf("matmat[%d][%d] = %g, want %g", j, i, v, want.At(i, j))
			}
		}
	}

	// solve: K̃·x must reproduce b.
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	resp, doc = postJSON(t, ts.Client(), ts.URL+"/v1/operators/main/solve",
		map[string]any{"vector": b}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	x := linalg.NewMatrix(n, 1)
	copy(x.Col(0), floats(t, doc["vector"]))
	back := h.Matvec(x)
	var num, den float64
	for i := 0; i < n; i++ {
		num += (back.At(i, 0) - b[i]) * (back.At(i, 0) - b[i])
		den += b[i] * b[i]
	}
	if rel := math.Sqrt(num / den); rel > 1e-5 {
		t.Fatalf("solve residual %.3e", rel)
	}

	// Binary fast path round-trips and matches JSON.
	buf := make([]byte, 8*n)
	for i, v := range W.Col(0) {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/operators/main/matvec", bytes.NewReader(buf))
	req.Header.Set("Content-Type", "application/octet-stream")
	bresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK || bresp.Header.Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("binary matvec: status %d, content-type %q", bresp.StatusCode, bresp.Header.Get("Content-Type"))
	}
	out, err := io.ReadAll(bresp.Body)
	if err != nil || len(out) != 8*n {
		t.Fatalf("binary response %d bytes, err %v", len(out), err)
	}
	for i := 0; i < n; i++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(out[8*i:]))
		if math.Abs(v-want.At(i, 0)) > 1e-10 {
			t.Fatalf("binary matvec[%d] = %g, want %g", i, v, want.At(i, 0))
		}
	}
}

func TestServeErrorTaxonomy(t *testing.T) {
	s, _, _, clk := newTestServer(t, QuotaConfig{RatePerSec: 1, Burst: 2}, Limits{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	h := compressedOperator(t)
	n := h.N()
	vec := make([]float64, n)

	cases := []struct {
		name   string
		url    string
		body   any
		hdr    map[string]string
		status int
		kind   string
	}{
		{"unknown operator", "/v1/operators/nope/matvec", map[string]any{"vector": vec}, nil,
			http.StatusNotFound, "unknown_operator"},
		{"unknown op verb", "/v1/operators/main/transmogrify", map[string]any{"vector": vec}, nil,
			http.StatusBadRequest, "invalid_input"},
		{"dimension mismatch", "/v1/operators/main/matvec", map[string]any{"vector": vec[:5]}, nil,
			http.StatusBadRequest, "invalid_input"},
		{"empty body", "/v1/operators/main/matvec", map[string]any{}, nil,
			http.StatusBadRequest, "invalid_input"},
		{"both encodings", "/v1/operators/main/matvec",
			map[string]any{"vector": vec, "columns": [][]float64{vec}}, nil,
			http.StatusBadRequest, "invalid_input"},
		{"bad deadline header", "/v1/operators/main/matvec", map[string]any{"vector": vec},
			map[string]string{"X-Deadline-Ms": "soon"}, http.StatusBadRequest, "invalid_input"},
	}
	for _, tc := range cases {
		resp, doc := postJSON(t, ts.Client(), ts.URL+tc.url, tc.body, tc.hdr)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
			continue
		}
		var kind string
		_ = json.Unmarshal(doc["kind"], &kind)
		if kind != tc.kind {
			t.Errorf("%s: kind %q, want %q", tc.name, kind, tc.kind)
		}
	}

	// Tenant quota: burst of 2 columns, then 429 with Retry-After; an
	// independent tenant is unaffected.
	hdr := map[string]string{"X-Tenant": "alice"}
	for i := 0; i < 2; i++ {
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/operators/main/matvec",
			map[string]any{"vector": vec}, hdr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-quota request %d: status %d", i, resp.StatusCode)
		}
	}
	resp, doc := postJSON(t, ts.Client(), ts.URL+"/v1/operators/main/matvec",
		map[string]any{"vector": vec}, hdr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var kind string
	_ = json.Unmarshal(doc["kind"], &kind)
	if kind != "quota_exceeded" {
		t.Fatalf("over-quota kind %q", kind)
	}
	if resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/operators/main/matvec",
		map[string]any{"vector": vec}, map[string]string{"X-Tenant": "bob"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("independent tenant throttled: %d", resp.StatusCode)
	}
	clk.advance(10 * time.Second)
	if resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/operators/main/matvec",
		map[string]any{"vector": vec}, hdr); resp.StatusCode != http.StatusOK {
		t.Fatalf("refilled tenant still throttled: %d", resp.StatusCode)
	}

	// Trace IDs: the caller's ID is echoed back verbatim.
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/operators/main/matvec",
		map[string]any{"vector": vec}, map[string]string{"X-Trace-Id": "cafe0123beef4567"})
	if got := resp.Header.Get("X-Trace-Id"); got != "cafe0123beef4567" {
		t.Fatalf("trace ID not echoed: %q", got)
	}
}

// A client-supplied deadline must propagate into the evaluation context
// and come back as 504 with a typed timeout kind.
func TestServeDeadlinePropagation(t *testing.T) {
	slow := OperatorSpec{
		Name: "slow", Dim: 4,
		Matvec: func(ctx context.Context, W *linalg.Matrix) (*linalg.Matrix, error) {
			select {
			case <-time.After(5 * time.Second):
				return linalg.NewMatrix(4, W.Cols), nil
			case <-ctx.Done():
				return nil, fmt.Errorf("slow op: %w", resilience.FromContext(ctx))
			}
		},
	}
	s, _, _, _ := newTestServer(t, QuotaConfig{}, Limits{}, slow)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	start := time.Now()
	resp, doc := postJSON(t, ts.Client(), ts.URL+"/v1/operators/slow/matvec",
		map[string]any{"vector": []float64{1, 2, 3, 4}},
		map[string]string{"X-Deadline-Ms": "50"})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not propagate: request took %v", elapsed)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var kind string
	_ = json.Unmarshal(doc["kind"], &kind)
	if kind != "timeout" {
		t.Fatalf("kind %q, want timeout", kind)
	}
}

func TestServeOperatorList(t *testing.T) {
	s, _, _, _ := newTestServer(t, QuotaConfig{}, Limits{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/operators")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Operators []struct {
			Name    string `json:"name"`
			Dim     int    `json:"dim"`
			Matmat  bool   `json:"matmat"`
			Solve   bool   `json:"solve"`
			Breaker string `json:"breaker"`
		} `json:"operators"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Operators) != 1 || doc.Operators[0].Name != "main" {
		t.Fatalf("operator list = %+v", doc.Operators)
	}
	op := doc.Operators[0]
	if op.Dim != compressedOperator(t).N() || !op.Matmat || !op.Solve || op.Breaker != "closed" {
		t.Fatalf("operator metadata = %+v", op)
	}
}

// Satellite: /readyz transitions under concurrent scrape during warm-up
// and drain. Scrapers hammer /readyz from many goroutines (this test is
// meaningful under -race) while the server walks not-ready → ready →
// draining; the probe must never report ready during warm-up or after
// drain begins.
func TestReadyzTransitionsUnderConcurrentScrape(t *testing.T) {
	rec := telemetry.New()
	lv := live.New(rec)
	lv.SetReady(false) // warm-up

	reg := NewRegistry(rec)
	h := compressedOperator(t)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if _, err := reg.RegisterHierarchical(ctx, "main", h, core.BatchOptions{}, Limits{}); err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{Registry: reg, Telemetry: rec, Live: lv})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	scrape := func() (int, string) {
		resp, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Errorf("scrape failed: %v", err)
			return 0, ""
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	var phase struct {
		sync.Mutex
		warm, drained bool
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Phase reads bracket the scrape: drained-before means the
				// drain flip fully preceded this scrape, and not-warm-after
				// means SetReady(true) cannot yet have happened — in both
				// windows the probe must report 503.
				phase.Lock()
				drainedBefore := phase.drained
				phase.Unlock()
				code, body := scrape()
				phase.Lock()
				warmAfter := phase.warm
				phase.Unlock()
				switch {
				case drainedBefore && code != http.StatusServiceUnavailable:
					t.Errorf("ready after drain completed: %d %q", code, body)
				case !warmAfter && code != http.StatusServiceUnavailable:
					t.Errorf("ready during warm-up: %d %q", code, body)
				}
			}
		}()
	}

	time.Sleep(20 * time.Millisecond) // concurrent scrapes against warm-up
	phase.Lock()
	phase.warm = true
	phase.Unlock()
	lv.SetReady(true)

	// Serving window: /readyz must actually report ready.
	okDeadline := time.Now().Add(2 * time.Second)
	for {
		if code, _ := scrape(); code == http.StatusOK {
			break
		}
		if time.Now().After(okDeadline) {
			t.Fatal("/readyz never reported ready in the serving window")
		}
		time.Sleep(time.Millisecond)
	}

	// Drain: the flip must be visible to concurrent scrapers immediately
	// after Drain returns (and stay down).
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(dctx) }()
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	phase.Lock()
	phase.drained = true
	phase.Unlock()
	if code, body := scrape(); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "serving") {
		t.Fatalf("post-drain /readyz = %d %q, want 503 naming the serving check", code, body)
	}
	time.Sleep(10 * time.Millisecond) // let scrapers observe the drained phase
	close(stop)
	wg.Wait()
}
