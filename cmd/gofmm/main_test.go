package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-matrix", "K10", "-n", "200", "-m", "32", "-s", "32", "-r", "2", "-exec", "seq"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"matrix K10", "compression:", "evaluation (2 rhs)", "sampled relative error"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunStructureFlag(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-matrix", "G03", "-n", "128", "-m", "32", "-s", "32", "-r", "1",
		"-budget", "0.3", "-structure", "-exec", "seq"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "block structure") {
		t.Fatalf("structure block missing:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "#") {
		t.Fatal("structure grid missing dense marker")
	}
}

func TestRunAllDistancesAndExecutors(t *testing.T) {
	for _, dist := range []string{"angle", "kernel", "lexicographic", "random"} {
		var sb strings.Builder
		if err := run([]string{"-matrix", "K09", "-n", "128", "-m", "32", "-s", "16",
			"-r", "1", "-dist", dist, "-exec", "level", "-workers", "2"}, &sb); err != nil {
			t.Fatalf("dist %s: %v", dist, err)
		}
	}
	for _, ex := range []string{"dynamic", "level", "taskdep", "seq"} {
		var sb strings.Builder
		if err := run([]string{"-matrix", "K09", "-n", "128", "-m", "32", "-s", "16",
			"-r", "1", "-exec", ex}, &sb); err != nil {
			t.Fatalf("exec %s: %v", ex, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-matrix", "NOPE"}, &sb); err == nil {
		t.Fatal("expected error for unknown matrix")
	}
	if err := run([]string{"-dist", "NOPE", "-n", "64"}, &sb); err == nil {
		t.Fatal("expected error for unknown distance")
	}
	if err := run([]string{"-exec", "NOPE", "-n", "64"}, &sb); err == nil {
		t.Fatal("expected error for unknown executor")
	}
	// Geometric distance on a problem without points must fail cleanly.
	if err := run([]string{"-matrix", "G01", "-n", "64", "-dist", "geometric"}, &sb); err == nil {
		t.Fatal("expected error for geometric distance without points")
	}
}

func TestRunSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/k.gofmm"
	var sb strings.Builder
	if err := run([]string{"-matrix", "K09", "-n", "128", "-m", "32", "-s", "16",
		"-r", "1", "-exec", "seq", "-save", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "saved compressed form") {
		t.Fatalf("save message missing:\n%s", sb.String())
	}
	sb.Reset()
	if err := run([]string{"-matrix", "K09", "-n", "128", "-m", "32", "-s", "16",
		"-r", "1", "-exec", "seq", "-load", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "loaded compressed form") {
		t.Fatalf("load message missing:\n%s", sb.String())
	}
}

func TestRunTelemetryFlags(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.json")
	var sb strings.Builder
	err := run([]string{"-matrix", "K10", "-n", "200", "-m", "32", "-s", "32", "-r", "2",
		"-workers", "2", "-trace", trace, "-metrics", metrics, "-report"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"wrote Chrome trace", "wrote metrics snapshot", "compress", "counters:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Both artifacts must be valid JSON with the expected top-level shape.
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	data, err = os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if snap["schema"] != "gofmm.telemetry/v1" {
		t.Fatalf("metrics schema = %v", snap["schema"])
	}
}

func TestRunChaosFlags(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-matrix", "K05", "-n", "512", "-m", "64", "-s", "64", "-r", "2",
		"-budget", "0.03", "-workers", "4", "-ranks", "8",
		"-chaos-seed", "3", "-chaos-task-fail", "0.05", "-chaos-msg-drop", "0.05"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"chaos: seed 3", "distributed evaluation (8 ranks",
		"chaos summary:", "recovered:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDistributedNoChaos(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-matrix", "K09", "-n", "256", "-m", "32", "-s", "16", "-r", "1",
		"-exec", "seq", "-ranks", "4"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "distributed evaluation (4 ranks") {
		t.Fatalf("distributed path not taken:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "chaos") {
		t.Fatal("chaos output printed without chaos flags")
	}
}

func TestRunDegradeFlag(t *testing.T) {
	var sb strings.Builder
	// A full-rank random problem at tiny tolerance: strict mode must fail…
	err := run([]string{"-matrix", "K06", "-n", "256", "-m", "32", "-s", "8", "-tol", "1e-12",
		"-budget", "0", "-r", "1", "-exec", "seq", "-degrade", "strict"}, &sb)
	if err == nil {
		t.Fatal("expected strict-mode tolerance failure")
	}
	// …dense mode must succeed and report the fallbacks.
	sb.Reset()
	if err := run([]string{"-matrix", "K06", "-n", "256", "-m", "32", "-s", "8", "-tol", "1e-12",
		"-budget", "0", "-r", "1", "-exec", "seq", "-degrade", "dense"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "graceful degradation:") {
		t.Fatalf("degradation report missing:\n%s", sb.String())
	}
	if err := run([]string{"-degrade", "NOPE", "-n", "64"}, &sb); err == nil {
		t.Fatal("expected error for unknown degrade policy")
	}
}

func TestRunTimeoutFlag(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-matrix", "K05", "-n", "512", "-m", "32", "-s", "64", "-r", "2",
		"-timeout", "1ns"}, &sb)
	if err == nil {
		t.Fatal("expected deadline error with -timeout 1ns")
	}
}
