package errtaxonomy_test

import (
	"testing"

	"gofmm/internal/analysis/analyzertest"
	"gofmm/internal/analysis/errtaxonomy"
)

func TestErrTaxonomy(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), errtaxonomy.Analyzer, "errtaxonomy")
}
