package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlightRingRetainsMostRecent(t *testing.T) {
	rec := New()
	f := NewFlightRecorder(rec, 16)
	for i := 0; i < 40; i++ {
		rec.StartSpan(fmt.Sprintf("s%02d", i)).End()
	}
	got := f.RecentSpans(0)
	if len(got) != 16 {
		t.Fatalf("ring holds %d spans, want 16", len(got))
	}
	// Oldest-first linearization: the ring must hold exactly s24..s39.
	for i, ev := range got {
		if want := fmt.Sprintf("s%02d", 24+i); ev.Name != want {
			t.Fatalf("slot %d = %q, want %q", i, ev.Name, want)
		}
	}
	if tail := f.RecentSpans(3); len(tail) != 3 || tail[2].Name != "s39" {
		t.Fatalf("RecentSpans(3) = %v", tail)
	}
}

func TestFlightErrorRingAndDump(t *testing.T) {
	rec := New()
	f := NewFlightRecorder(rec, 0) // raised to the 16 minimum
	sp := rec.StartSpan("work")
	sp.SetAttr(AttrTraceID, "deadbeefcafef00d")
	sp.End()
	for i := 0; i < flightErrKeep+5; i++ {
		f.RecordError("task", fmt.Sprintf("tid%03d", i), errors.New("boom"))
	}
	errs := f.Errors()
	if len(errs) != flightErrKeep {
		t.Fatalf("error ring holds %d, want %d", len(errs), flightErrKeep)
	}
	if errs[len(errs)-1].TraceID != fmt.Sprintf("tid%03d", flightErrKeep+4) {
		t.Fatalf("newest error = %+v", errs[len(errs)-1])
	}

	d := f.Dump("manual")
	if d.Schema != FlightDumpSchema || d.Reason != "manual" {
		t.Fatalf("dump header = %q/%q", d.Schema, d.Reason)
	}
	if len(d.Spans) == 0 || d.Spans[0].TraceID != "deadbeefcafef00d" {
		t.Fatalf("dump spans = %+v", d.Spans)
	}
	var buf bytes.Buffer
	if err := f.WriteDump(&buf, "manual"); err != nil {
		t.Fatal(err)
	}
	var round FlightDump
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if round.Schema != FlightDumpSchema {
		t.Fatalf("round-tripped schema = %q", round.Schema)
	}
}

func TestFlightAutoDumpViaReportCrash(t *testing.T) {
	rec := New()
	f := NewFlightRecorder(rec, 32)
	dir := t.TempDir()
	f.SetDumpDir(dir)

	sp := rec.StartSpan("matvec")
	sp.SetAttr(AttrTraceID, "0123456789abcdef")
	sp.End()
	rec.ReportCrash("matvec", "0123456789abcdef", errors.New("injected panic"))

	matches, err := filepath.Glob(filepath.Join(dir, "flight-*.matvec.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("dump files = %v (err %v)", matches, err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("auto dump not valid JSON: %v", err)
	}
	if d.Schema != FlightDumpSchema {
		t.Fatalf("schema = %q", d.Schema)
	}
	if !strings.Contains(string(raw), "0123456789abcdef") {
		t.Fatal("dump does not contain the crashing trace ID")
	}
	if len(d.Errors) != 1 || d.Errors[0].Label != "matvec" {
		t.Fatalf("dump errors = %+v", d.Errors)
	}
	// A second crash must get its own numbered file, never overwrite.
	rec.ReportCrash("matvec", "feedfacefeedface", errors.New("again"))
	matches, _ = filepath.Glob(filepath.Join(dir, "flight-*.matvec.json"))
	if len(matches) != 2 {
		t.Fatalf("after second crash: %v", matches)
	}
}

func TestFlightNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.SetDumpDir("/nope")
	f.RecordError("x", "", errors.New("e"))
	if got := f.RecentSpans(5); got != nil {
		t.Fatalf("nil RecentSpans = %v", got)
	}
	if got := f.Errors(); got != nil {
		t.Fatalf("nil Errors = %v", got)
	}
	if d := f.Dump("r"); d.Schema != FlightDumpSchema {
		t.Fatalf("nil Dump schema = %q", d.Schema)
	}
	if NewFlightRecorder(nil, 8) != nil {
		t.Fatal("NewFlightRecorder(nil) must return nil")
	}
	var rec *Recorder
	rec.ReportCrash("x", "", errors.New("e")) // must not panic
}

func TestTraceIDContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if id, ok := TraceIDFrom(ctx); ok || id != "" {
		t.Fatalf("empty ctx yielded trace ID %q", id)
	}
	ctx = ContextWithTraceID(ctx, "abc123")
	if id, ok := TraceIDFrom(ctx); !ok || id != "abc123" {
		t.Fatalf("round trip = %q, %v", id, ok)
	}
	// Empty IDs do not overwrite.
	if id, _ := TraceIDFrom(ContextWithTraceID(ctx, "")); id != "abc123" {
		t.Fatalf("empty ID overwrote: %q", id)
	}
	ctx2, id := EnsureTraceID(context.Background())
	if id == "" {
		t.Fatal("EnsureTraceID minted nothing")
	}
	if got, ok := TraceIDFrom(ctx2); !ok || got != id {
		t.Fatalf("EnsureTraceID ctx carries %q, returned %q", got, id)
	}
	// Already-tagged contexts keep their ID.
	if _, again := EnsureTraceID(ctx2); again != id {
		t.Fatalf("EnsureTraceID re-minted: %q vs %q", again, id)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q is not 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestSpanEventObserverAndAttrs(t *testing.T) {
	rec := New()
	var events []SpanEvent
	rec.OnSpanEnd(func(ev SpanEvent) { events = append(events, ev) })

	ctx := ContextWithTraceID(context.Background(), "feedbeef00000001")
	root := rec.StartSpan("outer")
	root.SetTraceIDFromContext(ctx)
	child := root.StartSpan("inner")
	child.SetAttr("k", "v")
	child.End()
	root.End()
	root.End() // second End must not re-emit

	if len(events) != 2 {
		t.Fatalf("observer saw %d events, want 2", len(events))
	}
	if events[0].Name != "inner" || events[0].Parent != "outer" || events[0].Attrs["k"] != "v" {
		t.Fatalf("inner event = %+v", events[0])
	}
	if events[1].Name != "outer" || events[1].TraceID != "feedbeef00000001" {
		t.Fatalf("outer event = %+v", events[1])
	}
	if got := root.Attr(AttrTraceID); got != "feedbeef00000001" {
		t.Fatalf("Attr = %q", got)
	}
}
