// Package load turns Go packages into the type-checked form the gofmmlint
// analyzers consume, without golang.org/x/tools: package metadata comes
// from `go list -export -json -deps` (which also compiles export data for
// every dependency into the build cache), source files are parsed with
// go/parser, and imports are satisfied by the standard library's gc export
// data reader. The same importer plumbing backs the standalone driver, the
// `go vet -vettool` unitchecker mode, and the analyzertest harness.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"gofmm/internal/analysis/framework"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string // absolute paths
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	Export     string
	GoFiles    []string
	DepOnly    bool
	Module     *struct{ GoVersion string }
}

// Load lists patterns in dir, type-checks every matched (non-DepOnly,
// non-standard) package from source against export data of its
// dependencies, and returns them in dependency-safe (go list) order.
// Test files are not loaded; `go vet -vettool` covers those.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Name != "" {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, gf := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, gf)
		}
		goVersion := ""
		if t.Module != nil {
			goVersion = t.Module.GoVersion
		}
		pkg, err := Check(fset, imp, t.ImportPath, files, goVersion)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		pkg.Dir = t.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Check parses filenames and type-checks them as one package. goVersion
// (e.g. "1.22") may be empty.
func Check(fset *token.FileSet, imp types.Importer, importPath string, filenames []string, goVersion string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	conf := types.Config{Importer: imp}
	if goVersion != "" {
		conf.GoVersion = "go" + strings.TrimPrefix(goVersion, "go")
	}
	info := framework.NewInfo()
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: importPath,
		GoFiles:    filenames,
		Fset:       fset,
		Syntax:     syntax,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewImporter returns a types.Importer that reads gc export data located by
// exportFile (import path → file). "unsafe" resolves to types.Unsafe.
func NewImporter(fset *token.FileSet, exportFile func(path string) (string, bool)) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exportFile(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return &unsafeAwareImporter{gc: gc}
}

type unsafeAwareImporter struct{ gc types.Importer }

func (u *unsafeAwareImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.gc.Import(path)
}

// StdExports runs `go list -export -json` for the given stdlib import paths
// and returns path → export data file. Used by analyzertest, where golden
// packages import a handful of std packages; results are cached by the
// caller.
func StdExports(paths []string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{"list", "-export", "-json", "-deps"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v\n%s", strings.Join(paths, " "), err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
