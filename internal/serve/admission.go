package serve

import (
	"context"
	"fmt"
	"time"

	"gofmm/internal/resilience"
)

// AdmissionConfig bounds one operator's concurrency and queueing. The zero
// value picks serving defaults.
type AdmissionConfig struct {
	// MaxConcurrent is the number of evaluations allowed to run at once
	// (default 4). The BatchEvaluator coalesces what runs concurrently, so
	// this bounds Matmat width pressure, not throughput.
	MaxConcurrent int
	// MaxQueue is the number of admitted-but-waiting requests beyond
	// MaxConcurrent (default 8·MaxConcurrent). When the queue is full new
	// requests are shed immediately with ErrOverloaded — the queue is the
	// only place a request ever waits, and it is bounded by construction.
	MaxQueue int
	// RetryAfter is the hint attached to shed requests (default 1s).
	RetryAfter time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8 * c.MaxConcurrent
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// admission is a two-stage gate: a semaphore of MaxConcurrent execution
// slots, fronted by a bounded wait queue. A request either (a) grabs a free
// slot immediately, (b) joins the queue and blocks until a slot frees or
// its context fires, or (c) finds the queue full and is shed with a typed,
// hinted ErrOverloaded. There is no path that waits without holding a
// queue slot, so memory and goroutine usage under any flood is bounded by
// MaxConcurrent + MaxQueue.
type admission struct {
	cfg   AdmissionConfig
	slots chan struct{}
	queue chan struct{}
}

func newAdmission(cfg AdmissionConfig) *admission {
	cfg = cfg.withDefaults()
	return &admission{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.MaxConcurrent),
		queue: make(chan struct{}, cfg.MaxQueue),
	}
}

// acquire claims an execution slot, shedding instead of queueing past the
// bound. The caller must pair a nil return with exactly one release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		return resilience.WithRetryAfter(
			fmt.Errorf("%w: %d executing, %d queued", ErrOverloaded,
				cap(a.slots), cap(a.queue)),
			a.cfg.RetryAfter)
	}
	defer func() { <-a.queue }()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return resilience.FromContext(ctx)
	}
}

func (a *admission) release() { <-a.slots }

// depth reports (executing, queued) for telemetry gauges.
func (a *admission) depth() (int, int) { return len(a.slots), len(a.queue) }
