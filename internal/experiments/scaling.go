package experiments

import (
	"io"

	"gofmm/internal/core"
)

// Scaling regenerates the complexity-shape evidence behind Figure 1 and the
// abstract's O(N log N)/O(N) claims: compression and evaluation times (and
// flops) across a geometric sweep of N with fixed m, s and budget, printing
// per-doubling growth ratios. O(N²) methods double their time 4× per row;
// GOFMM's compression should stay near 2–2.5× and its evaluation near 2×.
func Scaling(w io.Writer, sizes []int, seed int64) []Result {
	header(w, "N", "compress(s)", "xGrow", "eval(s)", "xGrow", "cFlops", "eFlops", "eps2")
	var out []Result
	var prev *Result
	for _, n := range sizes {
		p := GetProblem("K05", n, seed)
		res := Run(p, core.Config{
			LeafSize: 128, MaxRank: 64, Tol: 1e-4, Kappa: 16, Budget: 0.05,
			Distance: core.Angle, Exec: core.Dynamic, NumWorkers: 2,
			CacheBlocks: true, Seed: seed,
		}, 32, seed)
		res.Experiment = "scaling"
		cell(w, "%d", res.N)
		cell(w, "%.3f", res.CompressS)
		if prev != nil && prev.CompressS > 0 {
			cell(w, "%.2f", res.CompressS/prev.CompressS)
		} else {
			cell(w, "-")
		}
		cell(w, "%.4f", res.EvalS)
		if prev != nil && prev.EvalS > 0 {
			cell(w, "%.2f", res.EvalS/prev.EvalS)
		} else {
			cell(w, "-")
		}
		cell(w, "%.2e", res.CompressGF*res.CompressS)
		cell(w, "%.2e", res.EvalGF*res.EvalS)
		cell(w, "%.1e", res.Eps)
		endRow(w)
		out = append(out, res)
		r := res
		prev = &r
	}
	return out
}
