package core

import (
	"math"
	"math/rand"

	"gofmm/internal/linalg"
)

// ExactRows returns (K·W)[rows, :] computed directly from matrix entries —
// O(len(rows)·N·r) work and O(len(rows)·N) transient memory.
func ExactRows(K SPD, rows []int, W *linalg.Matrix) *linalg.Matrix {
	n := K.Dim()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	block := NewGathered(K, rows, all)
	return linalg.MatMul(false, false, block, W)
}

// ExactMatvec computes K·W exactly in row blocks (for verification on small
// problems; this is the O(N²r) dense baseline of Figure 1).
func ExactMatvec(K SPD, W *linalg.Matrix) *linalg.Matrix {
	n := K.Dim()
	out := linalg.NewMatrix(n, W.Cols)
	const blk = 256
	for lo := 0; lo < n; lo += blk {
		hi := min(lo+blk, n)
		rows := make([]int, hi-lo)
		for k := range rows {
			rows[k] = lo + k
		}
		part := ExactRows(K, rows, W)
		out.View(lo, 0, hi-lo, W.Cols).CopyFrom(part)
	}
	return out
}

// SampleRelErr estimates the paper's accuracy metric (Eq. 11)
//
//	ε₂ = ‖K̃w − Kw‖_F / ‖Kw‖_F
//
// on a random sample of rows (the paper samples 100 rows to avoid the
// O(rN²) cost of the exact metric). U must be a previously computed
// Matvec(W) result.
func (h *Hierarchical) SampleRelErr(W, U *linalg.Matrix, nSamples int, seed int64) float64 {
	n := h.K.Dim()
	if nSamples <= 0 || nSamples > n {
		nSamples = min(100, n)
	}
	rng := rand.New(rand.NewSource(seed))
	rows := rng.Perm(n)[:nSamples]
	exact := ExactRows(h.K, rows, W)
	approx := U.RowsGather(rows)
	approx.AddScaled(-1, exact)
	den := exact.FrobeniusNorm()
	if den == 0 {
		return approx.FrobeniusNorm()
	}
	return approx.FrobeniusNorm() / den
}

// RelErr computes ε₂ exactly (all rows); use only on small problems.
func (h *Hierarchical) RelErr(W, U *linalg.Matrix) float64 {
	exact := ExactMatvec(h.K, W)
	diff := U.Clone()
	diff.AddScaled(-1, exact)
	den := exact.FrobeniusNorm()
	if den == 0 {
		return diff.FrobeniusNorm()
	}
	return diff.FrobeniusNorm() / den
}

// EntryErrors reports the per-entry relative errors of the first k entries
// of the first right-hand side — matching the artifact output format of the
// paper ("the error of the first 10 entries").
func (h *Hierarchical) EntryErrors(W, U *linalg.Matrix, k int) []float64 {
	if k > h.K.Dim() {
		k = h.K.Dim()
	}
	rows := make([]int, k)
	for i := range rows {
		rows[i] = i
	}
	exact := ExactRows(h.K, rows, W)
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		e := exact.At(i, 0)
		d := U.At(i, 0) - e
		if e != 0 {
			out[i] = math.Abs(d / e)
		} else {
			out[i] = math.Abs(d)
		}
	}
	return out
}
