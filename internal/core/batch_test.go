package core

// Concurrency tests for the request-coalescing BatchEvaluator, written to
// run under -race: many goroutines with mixed block widths, chaos-injected
// task failures, mid-flight cancellation, a panicking oracle, and Close
// under traffic. The invariant throughout: every accepted request receives
// either exactly its own correct columns or a typed error — never a hang,
// never another request's data.

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/telemetry"
)

// batchTestOperator compresses a small Gauss-kernel problem with the
// dynamic executor, chaos-injected task failures (exercising the scheduler
// retry path inside batched evaluations), telemetry and a workspace pool.
func batchTestOperator(t *testing.T) *Hierarchical {
	t.Helper()
	rec := telemetry.New()
	chaos := resilience.NewChaos(resilience.ChaosConfig{Seed: 5, TaskFail: 0.05}, rec)
	h, _ := compressGauss(t, 192, Config{
		LeafSize: 32, MaxRank: 32, Tol: 1e-5, Kappa: 8, Budget: 0.1,
		Distance: Kernel, Exec: Dynamic, NumWorkers: 2, Seed: 1,
		CacheBlocks: true, Telemetry: rec, Chaos: chaos,
	})
	h.Cfg.Workspace = nil // pool attached per test where wanted
	return h
}

func TestBatchEvaluatorConcurrentMixedSizes(t *testing.T) {
	h := batchTestOperator(t)
	n := h.K.Dim()
	const goroutines = 64
	const perG = 3

	// Precompute every request block and its reference result serially
	// (h.Matvec writes shared Stats, so references cannot be computed
	// concurrently with the batched traffic).
	type job struct {
		W, want *linalg.Matrix
	}
	jobs := make([][]job, goroutines)
	for g := 0; g < goroutines; g++ {
		rng := rand.New(rand.NewSource(int64(1000 + g)))
		jobs[g] = make([]job, perG)
		for k := 0; k < perG; k++ {
			width := 1 + (g+k)%3 // mixed widths 1..3
			W := linalg.GaussianMatrix(rng, n, width)
			jobs[g][k] = job{W: W, want: h.Matvec(W)}
		}
	}

	ev := h.NewBatchEvaluator(BatchOptions{MaxBatch: 16, MaxDelay: 2 * time.Millisecond})
	defer ev.Close()
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := range jobs[g] {
				U, err := ev.Matvec(context.Background(), jobs[g][k].W)
				if err != nil {
					errs <- err
					return
				}
				want := jobs[g][k].want
				for j := 0; j < want.Cols; j++ {
					if d := maxAbsDiff(U, want); d > 1e-12 {
						t.Errorf("goroutine %d request %d: batched result off by %.3e (cross-request bleed?)", g, k, d)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("unexpected request error: %v", err)
	}
	st := ev.Stats()
	if got, want := st.Requests, int64(goroutines*perG); got != want {
		t.Errorf("Stats.Requests = %d, want %d", got, want)
	}
	if st.Flushes < 1 || st.Flushes > st.Requests {
		t.Errorf("Stats.Flushes = %d out of range [1, %d]", st.Flushes, st.Requests)
	}
	t.Logf("coalescing: %d requests (%d columns) in %d flushes (%.1f req/flush)",
		st.Requests, st.Columns, st.Flushes, float64(st.Requests)/float64(st.Flushes))
	if inj := h.Cfg.Chaos.Injected()["task_fail"]; inj == 0 {
		t.Log("note: chaos injected no task failures at this seed/volume")
	}
	snap := h.Cfg.Telemetry.Snapshot()
	if snap.Counters["batch.flushes"] != st.Flushes {
		t.Errorf("telemetry batch.flushes = %d, want %d", snap.Counters["batch.flushes"], st.Flushes)
	}
	if snap.Counters["batch.requests"] != st.Requests {
		t.Errorf("telemetry batch.requests = %d, want %d", snap.Counters["batch.requests"], st.Requests)
	}
}

// panicSPD panics inside At while armed — standing in for a kernel bug
// surfacing mid-evaluation (reachable because CacheBlocks is off, so the
// passes gather oracle entries on the fly).
type panicSPD struct {
	SPD
	armed atomic.Bool
}

func (p *panicSPD) At(i, j int) float64 {
	if p.armed.Load() {
		panic("injected oracle panic")
	}
	return p.SPD.At(i, j)
}

func TestBatchEvaluatorPanicIsTypedAndContained(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	K, X := gaussKernelMatrix(rng, 128, 0.8)
	oracle := &panicSPD{SPD: denseSPD{K}}
	h, err := Compress(oracle, Config{
		LeafSize: 32, MaxRank: 32, Tol: 1e-5, Kappa: 8, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 1, Points: X,
		CacheBlocks: false, // evaluation consults the oracle
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := h.NewBatchEvaluator(BatchOptions{MaxBatch: 8, MaxDelay: time.Millisecond})
	defer ev.Close()
	W := linalg.GaussianMatrix(rng, 128, 1)

	oracle.armed.Store(true)
	_, err = ev.Matvec(context.Background(), W)
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *resilience.PanicError from panicking batch, got %v", err)
	}
	oracle.armed.Store(false)

	// The flusher must have survived: the next request is served normally.
	U, err := ev.Matvec(context.Background(), W)
	if err != nil {
		t.Fatalf("evaluator did not recover after a batch panic: %v", err)
	}
	if d := maxAbsDiff(U, h.Matvec(W)); d > 1e-12 {
		t.Fatalf("post-panic result off by %.3e", d)
	}
}

func TestBatchEvaluatorCancellation(t *testing.T) {
	h := batchTestOperator(t)
	n := h.K.Dim()
	ev := h.NewBatchEvaluator(BatchOptions{MaxBatch: 4, MaxDelay: 50 * time.Millisecond})
	defer ev.Close()
	rng := rand.New(rand.NewSource(4))
	W := linalg.GaussianMatrix(rng, n, 1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ev.Matvec(ctx, W); !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("pre-cancelled request: want ErrCancelled, got %v", err)
	}

	// A request whose deadline fires while it waits in the coalescing
	// window (no peers arrive, MaxDelay ≫ deadline) gets ErrTimeout.
	ctx, cancel = context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := ev.Matvec(ctx, W); err != nil && !errors.Is(err, resilience.ErrTimeout) {
		t.Fatalf("deadline during coalescing: want nil or ErrTimeout, got %v", err)
	}

	// Invalid input is rejected up front with the typed sentinel.
	if _, err := ev.Matvec(context.Background(), linalg.NewMatrix(n+1, 1)); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Fatalf("dimension mismatch: want ErrInvalidInput, got %v", err)
	}
}

func TestBatchEvaluatorCloseUnderTraffic(t *testing.T) {
	h := batchTestOperator(t)
	n := h.K.Dim()
	ev := h.NewBatchEvaluator(BatchOptions{MaxBatch: 8, MaxDelay: time.Millisecond})
	rng := rand.New(rand.NewSource(12))
	W := linalg.GaussianMatrix(rng, n, 1)
	want := h.Matvec(W)

	const goroutines = 16
	var wg sync.WaitGroup
	var served, closedErr, cancelled atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				U, err := ev.Matvec(context.Background(), W)
				switch {
				case err == nil:
					if d := maxAbsDiff(U, want); d > 1e-12 {
						t.Errorf("served result off by %.3e", d)
					}
					served.Add(1)
				case errors.Is(err, ErrEvaluatorClosed):
					closedErr.Add(1)
					return
				case errors.Is(err, resilience.ErrCancelled):
					cancelled.Add(1)
				default:
					t.Errorf("unexpected error under Close: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(3 * time.Millisecond)
	ev.Close()
	ev.Close() // idempotent
	wg.Wait()
	if _, err := ev.Matvec(context.Background(), W); !errors.Is(err, ErrEvaluatorClosed) {
		t.Fatalf("Matvec after Close: want ErrEvaluatorClosed, got %v", err)
	}
	t.Logf("served %d, closed %d, cancelled %d", served.Load(), closedErr.Load(), cancelled.Load())
	if served.Load() == 0 {
		t.Error("no request was served before Close")
	}
}

// TestBatchEvaluatorWideRequest submits a block wider than MaxBatch: it
// must be accepted and served whole (the window closes immediately).
func TestBatchEvaluatorWideRequest(t *testing.T) {
	h := batchTestOperator(t)
	n := h.K.Dim()
	ev := h.NewBatchEvaluator(BatchOptions{MaxBatch: 4, MaxDelay: time.Millisecond})
	defer ev.Close()
	rng := rand.New(rand.NewSource(21))
	W := linalg.GaussianMatrix(rng, n, 11)
	want := h.Matvec(W)
	U, err := ev.Matvec(context.Background(), W)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(U, want); d > 1e-12 {
		t.Fatalf("wide request off by %.3e", d)
	}
}

// TestBatchEvaluatorConcurrentClose hammers Close from many goroutines
// while traffic is in flight: every Close must return (no deadlock), the
// evaluator must report Closed, and post-close submissions must all get
// the typed sentinel.
func TestBatchEvaluatorConcurrentClose(t *testing.T) {
	h := batchTestOperator(t)
	n := h.K.Dim()
	ev := h.NewBatchEvaluator(BatchOptions{MaxBatch: 8, MaxDelay: time.Millisecond})
	if ev.Closed() {
		t.Fatal("fresh evaluator reports Closed")
	}
	rng := rand.New(rand.NewSource(31))
	W := linalg.GaussianMatrix(rng, n, 1)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				_, err := ev.Matvec(context.Background(), W)
				if err != nil && !errors.Is(err, ErrEvaluatorClosed) {
					t.Errorf("racing Matvec: want nil or ErrEvaluatorClosed, got %v", err)
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev.Close()
		}()
	}
	wg.Wait()
	if !ev.Closed() {
		t.Fatal("evaluator does not report Closed after Close")
	}
	if _, err := ev.Matvec(context.Background(), W); !errors.Is(err, ErrEvaluatorClosed) {
		t.Fatalf("post-close Matvec: want ErrEvaluatorClosed, got %v", err)
	}
}
