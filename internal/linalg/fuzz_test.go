package linalg

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// FuzzQRCPFactorization drives pivoted QR over random shapes/seeds and
// verifies Q·R = A·P and orthonormality.
func FuzzQRCPFactorization(f *testing.F) {
	f.Add(int64(1), 8, 5)
	f.Add(int64(2), 1, 1)
	f.Add(int64(3), 20, 30)
	f.Fuzz(func(t *testing.T, seed int64, m, n int) {
		m = 1 + absInt(m)%40
		n = 1 + absInt(n)%40
		rng := rand.New(rand.NewSource(seed))
		A := GaussianMatrix(rng, m, n)
		fac := QRColumnPivot(A, 0, 0)
		Q := fac.FormQ()
		R := fac.R()
		QR := MatMul(false, false, Q, R)
		AP := A.ColsGather(fac.Piv)
		if d := RelFrobDiff(QR, AP); d > 1e-10 {
			t.Fatalf("QR reconstruction error %g (m=%d n=%d)", d, m, n)
		}
		if fac.Rank > 0 {
			QtQ := MatMul(true, false, Q, Q)
			if d := RelFrobDiff(QtQ, Eye(fac.Rank)); d > 1e-10 {
				t.Fatalf("Q not orthonormal: %g", d)
			}
		}
	})
}

// FuzzLUSolve factors random square systems and verifies residuals.
func FuzzLUSolve(f *testing.F) {
	f.Add(int64(1), 5)
	f.Add(int64(9), 1)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		n = 1 + absInt(n)%30
		rng := rand.New(rand.NewSource(seed))
		A := GaussianMatrix(rng, n, n)
		lu, err := LUFactor(A)
		if err != nil {
			return // singular: fine for random fuzz input
		}
		x := GaussianMatrix(rng, n, 1)
		b := MatMul(false, false, A, x)
		lu.Solve(b)
		if d := RelFrobDiff(b, x); d > 1e-6 {
			t.Fatalf("LU solve error %g (n=%d)", d, n)
		}
	})
}

// FuzzGemmPacked drives the packed/tiled Gemm over random shapes, transpose
// flags, scalars, view offsets (random strides) and NaN/Inf poisoning, and
// checks it against the naive reference. Shapes are steered across the
// packed-path threshold so both the micro-kernel and the serial fast paths
// are hit.
func FuzzGemmPacked(f *testing.F) {
	f.Add(int64(1), 64, 64, 64, false, false, 1.0, 0.0, 0, false)
	f.Add(int64(2), 9, 7, 5, true, false, -0.5, 1.0, 1, false)
	f.Add(int64(3), 130, 48, 300, false, true, 2.0, 0.25, 2, false)
	f.Add(int64(4), 16, 12, 8, true, true, 1.0, 1.0, 3, true)
	f.Fuzz(func(t *testing.T, seed int64, m, n, k int, transA, transB bool, alpha, beta float64, off int, poison bool) {
		m, n, k = absInt(m)%140, absInt(n)%140, absInt(k)%140
		if !isFinite(alpha) || !isFinite(beta) {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		ar, ac := m, k
		if transA {
			ar, ac = k, m
		}
		br, bc := k, n
		if transB {
			br, bc = n, k
		}
		// Random view offsets give every operand an independent stride.
		oa, ob, oc := absInt(off)%3, absInt(off/3)%3, absInt(off/9)%3
		A := GaussianMatrix(rng, ar+oa+1, ac+2).View(oa, 1, ar, ac)
		B := GaussianMatrix(rng, br+ob+2, bc+1).View(ob, 0, br, bc)
		C := GaussianMatrix(rng, m+oc+1, n+2).View(oc, 1, m, n)
		if poison && len(A.Data) > 0 && len(B.Data) > 0 {
			// NaN/Inf must propagate (or be wiped by beta=0) exactly like the
			// reference — never crash, never leak into neighbouring tiles.
			A.Data[absInt(int(seed))%len(A.Data)] = math.NaN()
			B.Data[absInt(int(seed/7))%len(B.Data)] = math.Inf(1)
		}
		want := C.Clone()
		refGemm(transA, transB, alpha, A, B, beta, want)
		Gemm(transA, transB, alpha, A, B, beta, C)
		tol := 1e-12 * float64(k+1) * (1 + math.Abs(alpha)) * 10
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				g, w := C.At(i, j), want.At(i, j)
				if g != w && !(math.IsNaN(g) && math.IsNaN(w)) && math.Abs(g-w) > tol {
					t.Fatalf("C[%d,%d] = %g, want %g (m=%d n=%d k=%d tA=%v tB=%v)", i, j, g, w, m, n, k, transA, transB)
				}
			}
		}
	})
}

// TestGemmAssociativity is the testing/quick identity (A·B)·x == A·(B·x):
// both sides are computed entirely by the tiled kernels, so agreement within
// 1e-12 pins down accumulation order bugs across the packed/small paths.
func TestGemmAssociativity(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63())
			vals[1] = reflect.ValueOf(1 + rng.Intn(90))
			vals[2] = reflect.ValueOf(1 + rng.Intn(90))
			vals[3] = reflect.ValueOf(1 + rng.Intn(90))
		},
	}
	prop := func(seed int64, m, k, n int) bool {
		rng := rand.New(rand.NewSource(seed))
		A := GaussianMatrix(rng, m, k)
		B := GaussianMatrix(rng, k, n)
		x := GaussianMatrix(rng, n, 1)
		lhs := MatMul(false, false, MatMul(false, false, A, B), x)
		rhs := MatMul(false, false, A, MatMul(false, false, B, x))
		// Normalize by the operand magnitudes so the 1e-12 bound is scale-free.
		scale := A.FrobeniusNorm()*B.FrobeniusNorm()*x.FrobeniusNorm() + 1
		for i := 0; i < m; i++ {
			if math.Abs(lhs.At(i, 0)-rhs.At(i, 0)) > 1e-12*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func absInt(x int) int {
	if x < 0 {
		if x == -x {
			return 0
		}
		return -x
	}
	return x
}
