package spdmat

import (
	"math"
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
)

// toDense expands an SPD oracle for verification.
func toDense(k SPD) *linalg.Matrix {
	n := k.Dim()
	M := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			M.Set(i, j, k.At(i, j))
		}
	}
	return M
}

// checkSPD asserts symmetry and positive-definiteness via Cholesky.
func checkSPD(t *testing.T, name string, k SPD) {
	t.Helper()
	M := toDense(k)
	if d := linalg.RelFrobDiff(M.Transposed(), M); d > 1e-10 {
		t.Fatalf("%s: not symmetric (%g)", name, d)
	}
	if _, err := linalg.Cholesky(M); err != nil {
		t.Fatalf("%s: not positive definite: %v", name, err)
	}
}

func TestAllProblemsGenerateAndAreSPD(t *testing.T) {
	// Small dimensions keep the Cholesky check fast; every generator must
	// produce a true SPD matrix.
	for _, name := range Names() {
		p, err := Generate(name, 144, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("name mismatch: %q vs %q", p.Name, name)
		}
		if p.K.Dim() < 16 {
			t.Fatalf("%s: dimension %d too small", name, p.K.Dim())
		}
		checkSPD(t, name, p.K)
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("K99", 100, 0); err == nil {
		t.Fatal("expected error for unknown problem")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("K04", 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("K04", 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		i, j := trial%a.K.Dim(), (trial*7)%a.K.Dim()
		if a.K.At(i, j) != b.K.At(i, j) {
			t.Fatalf("K04 not deterministic at (%d,%d)", i, j)
		}
	}
	c, err := Generate("K04", 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for trial := 0; trial < 20 && same; trial++ {
		i, j := trial, (trial+31)%c.K.Dim()
		same = a.K.At(i, j) == c.K.At(i, j)
	}
	if same {
		t.Fatal("different seeds produced identical K04")
	}
}

func TestKernelSubmatrixMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X := linalg.GaussianMatrix(rng, 6, 50)
	for _, typ := range []KernelType{Gauss, Laplace, Poly, Cosine} {
		k := NewKernel(X, typ, 0.5, 1e-6)
		I := []int{3, 11, 0, 49}
		J := []int{7, 3, 22}
		dst := linalg.NewMatrix(len(I), len(J))
		k.Submatrix(I, J, dst)
		for c, j := range J {
			for r, i := range I {
				if math.Abs(dst.At(r, c)-k.At(i, j)) > 1e-12 {
					t.Fatalf("type %d: Submatrix(%d,%d) = %g, At = %g",
						typ, i, j, dst.At(r, c), k.At(i, j))
				}
			}
		}
	}
}

func TestKernelDiagonalRidge(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	X := linalg.GaussianMatrix(rng, 3, 10)
	k := NewKernel(X, Gauss, 1, 0.5)
	if got := k.At(4, 4); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("diagonal = %g, want 1.5 (1 + ridge)", got)
	}
	// Submatrix must apply the ridge only to true diagonal entries.
	dst := linalg.NewMatrix(2, 2)
	k.Submatrix([]int{4, 5}, []int{4, 6}, dst)
	if math.Abs(dst.At(0, 0)-1.5) > 1e-12 {
		t.Fatalf("bulk diagonal = %g", dst.At(0, 0))
	}
	if dst.At(1, 0) > 1 {
		t.Fatal("ridge leaked into off-diagonal entry")
	}
}

func TestDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	M := linalg.RandomSPD(rng, 20, 10)
	d := &Dense{M}
	if d.Dim() != 20 {
		t.Fatal("Dim wrong")
	}
	dst := linalg.NewMatrix(2, 3)
	d.Submatrix([]int{1, 5}, []int{0, 7, 19}, dst)
	if dst.At(1, 2) != M.At(5, 19) {
		t.Fatal("Dense.Submatrix wrong")
	}
}

func TestStencilInverseActsAsInverse(t *testing.T) {
	// K02 must be ((L+I)² + δI)⁻¹: multiply back and compare with identity.
	p, err := K02(64)
	if err != nil {
		t.Fatal(err)
	}
	n := p.K.Dim()
	if n != 64 {
		t.Fatalf("K02 dim = %d", n)
	}
	nx := 8
	one := func(x, y float64) float64 { return 1 }
	zero := func(x, y float64) float64 { return 0 }
	b := grid2D(nx, nx, one, zero, 1.0)
	A := bandedToDense(b)
	A2 := linalg.MatMul(false, false, A, A)
	for i := 0; i < n; i++ {
		A2.Add(i, i, 1e-4)
	}
	prod := linalg.MatMul(false, false, A2, p.K.(*Dense).M)
	if d := linalg.RelFrobDiff(prod, linalg.Eye(n)); d > 1e-8 {
		t.Fatalf("K02 · (L+1)² deviates from I by %g", d)
	}
}

func TestGridSide(t *testing.T) {
	cases := []struct{ n, dims, want int }{
		{64, 2, 8}, {100, 2, 10}, {99, 2, 9}, {27, 3, 3}, {16, 4, 2}, {3, 3, 2},
	}
	for _, c := range cases {
		if got := gridSide(c.n, c.dims); got != c.want {
			t.Errorf("gridSide(%d,%d) = %d, want %d", c.n, c.dims, got, c.want)
		}
	}
}

func TestGraphProblemsConnectivity(t *testing.T) {
	// Laplacian inverses of our graphs must have substantial off-diagonal
	// mass (connected graphs) — a sanity check that generators build real
	// graphs rather than diagonal matrices.
	for _, name := range []string{"G01", "G02", "G03", "G04", "G05"} {
		p, err := Generate(name, 128, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := p.K.Dim()
		var off, diag float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := math.Abs(p.K.At(i, j))
				if i == j {
					diag += v
				} else {
					off += v
				}
			}
		}
		if off < 0.1*diag {
			t.Fatalf("%s: suspiciously diagonal (off %g vs diag %g)", name, off, diag)
		}
	}
}

func TestMLProblemsHavePoints(t *testing.T) {
	for _, name := range []string{"COVTYPE", "HIGGS", "MNIST"} {
		p, err := Generate(name, 64, 5)
		if err != nil {
			t.Fatal(err)
		}
		if p.Points == nil || p.Points.Cols != p.K.Dim() {
			t.Fatalf("%s: missing or mismatched points", name)
		}
	}
	if p, _ := Generate("MNIST", 64, 5); p.Points.Rows != 780 {
		t.Fatalf("MNIST dimensionality = %d", p.Points.Rows)
	}
}

func TestDCTMatrixOrthonormal(t *testing.T) {
	F := dctMatrix(32)
	FtF := linalg.MatMul(true, false, F, F)
	if d := linalg.RelFrobDiff(FtF, linalg.Eye(32)); d > 1e-12 {
		t.Fatalf("DCT not orthonormal: %g", d)
	}
}

// TestSpectralDecayClassification verifies that the generators land in the
// compressibility classes the paper assigns them: smooth kernels and
// operator inverses have fast-decaying off-diagonal singular values, while
// the pseudo-spectral operators (K15–K17) do not. We measure the numerical
// rank (at 1e-6) of a fixed off-diagonal block.
func TestSpectralDecayClassification(t *testing.T) {
	offDiagRank := func(name string) int {
		p, err := Generate(name, 128, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := p.K.Dim()
		half := n / 2
		B := linalg.NewMatrix(half, n-half)
		for j := 0; j < n-half; j++ {
			for i := 0; i < half; i++ {
				B.Set(i, j, p.K.At(i, half+j))
			}
		}
		// Numerical rank via pivoted QR.
		f := linalg.QRColumnPivot(B, 1e-6, 0)
		return f.Rank
	}
	easy := []string{"K02", "K10", "K12"}
	hard := []string{"K15", "K16", "K17"}
	maxEasy, minHard := 0, 1<<30
	for _, name := range easy {
		if r := offDiagRank(name); r > maxEasy {
			maxEasy = r
		}
	}
	for _, name := range hard {
		if r := offDiagRank(name); r < minHard {
			minHard = r
		}
	}
	if maxEasy >= minHard {
		t.Fatalf("off-diagonal ranks don't separate: easy max %d, hard min %d", maxEasy, minHard)
	}
}

// TestOperatorsWellConditioned: the stencil inverses must have a modest
// condition number (they're regularized), verified with the Jacobi
// eigensolver.
func TestOperatorsPositiveSpectra(t *testing.T) {
	for _, name := range []string{"K02", "K12", "G01"} {
		p, err := Generate(name, 100, 3)
		if err != nil {
			t.Fatal(err)
		}
		evs, _ := linalg.SymEig(toDense(p.K), false)
		if evs[0] <= 0 {
			t.Fatalf("%s: smallest eigenvalue %g", name, evs[0])
		}
	}
}
