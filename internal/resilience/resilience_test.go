package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gofmm/internal/telemetry"
)

func TestNilChaosIsInert(t *testing.T) {
	var c *Chaos
	if c.Enabled() {
		t.Fatal("nil chaos reports enabled")
	}
	if c.TaskFail("x") || c.MsgDrop("x") || c.MsgCorrupt("x") {
		t.Fatal("nil chaos injected a fault")
	}
	if d := c.MsgDelay("x"); d != 0 {
		t.Fatalf("nil chaos delay %v", d)
	}
	if _, ok := c.PoisonOracle("x"); ok {
		t.Fatal("nil chaos poisoned")
	}
	if c.Injected() != nil {
		t.Fatal("nil chaos has injections")
	}
}

func TestChaosDeterministicPerSite(t *testing.T) {
	draw := func() []bool {
		c := NewChaos(ChaosConfig{Seed: 42, TaskFail: 0.3}, nil)
		out := make([]bool, 0, 200)
		for i := 0; i < 100; i++ {
			out = append(out, c.TaskFail("a"))
		}
		for i := 0; i < 100; i++ {
			out = append(out, c.TaskFail("b"))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical runs", i)
		}
	}
	// Interleaving sites differently must not change per-site sequences.
	c := NewChaos(ChaosConfig{Seed: 42, TaskFail: 0.3}, nil)
	mixed := make(map[string][]bool)
	for i := 0; i < 100; i++ {
		mixed["a"] = append(mixed["a"], c.TaskFail("a"))
		mixed["b"] = append(mixed["b"], c.TaskFail("b"))
	}
	for i := 0; i < 100; i++ {
		if mixed["a"][i] != a[i] || mixed["b"][i] != a[100+i] {
			t.Fatalf("per-site stream %d depends on interleaving", i)
		}
	}
}

func TestChaosCountsAndTelemetry(t *testing.T) {
	rec := telemetry.New()
	c := NewChaos(ChaosConfig{Seed: 7, MsgDrop: 0.5}, rec)
	hits := int64(0)
	for i := 0; i < 400; i++ {
		if c.MsgDrop("up") {
			hits++
		}
	}
	if hits == 0 || hits == 400 {
		t.Fatalf("p=0.5 produced %d/400 drops", hits)
	}
	if got := c.Injected()["msg_drop"]; got != hits {
		t.Fatalf("Injected()=%d, observed %d", got, hits)
	}
	if got := rec.Counter("chaos.msg_drop.injected").Value(); got != hits {
		t.Fatalf("telemetry counter %d, observed %d", got, hits)
	}
}

func TestChaosConcurrentUse(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1, TaskFail: 0.2, MsgDrop: 0.2}, telemetry.New())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			site := fmt.Sprintf("w%d", w)
			for i := 0; i < 200; i++ {
				c.TaskFail(site)
				c.MsgDrop(site)
			}
		}(w)
	}
	wg.Wait()
}

func TestBackoffBoundedAndDeterministic(t *testing.T) {
	b := Backoff{Base: 100 * time.Microsecond, Max: time.Millisecond, Factor: 2, MaxRetries: 5}
	prev := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		d := b.Delay("s", attempt)
		if d != b.Delay("s", attempt) {
			t.Fatalf("jitter not deterministic at attempt %d", attempt)
		}
		if d <= 0 || d > time.Duration(1.25*float64(time.Millisecond)) {
			t.Fatalf("delay %v out of bounds at attempt %d", d, attempt)
		}
		if attempt > 0 && attempt < 3 && d < prev/4 {
			t.Fatalf("delay shrank unexpectedly: %v after %v", d, prev)
		}
		prev = d
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	b := Backoff{Base: time.Microsecond, Max: 10 * time.Microsecond}
	calls := 0
	attempts, err := Retry(context.Background(), b, "op", func(int) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("attempts=%d err=%v", attempts, err)
	}
}

func TestRetryExhaustionIsTyped(t *testing.T) {
	b := Backoff{Base: time.Microsecond, Max: 2 * time.Microsecond, MaxRetries: 2}
	_, err := Retry(context.Background(), b, "op", func(int) error { return errors.New("always") })
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("want ErrTaskFailed, got %v", err)
	}
}

func TestRetryHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Retry(ctx, Backoff{}, "op", func(int) error { return errors.New("never runs") })
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
}

func TestFromContext(t *testing.T) {
	if err := FromContext(context.Background()); err != nil {
		t.Fatalf("live context: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := FromContext(ctx); !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled: %v", err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if err := FromContext(dctx); !errors.Is(err, ErrTimeout) {
		t.Fatalf("deadline: %v", err)
	}
}

func TestPanicErrorMessage(t *testing.T) {
	e := &PanicError{Label: "SKEL(3)", Value: "boom"}
	if got := e.Error(); got == "" || !errors.As(error(e), new(*PanicError)) {
		t.Fatalf("bad PanicError: %q", got)
	}
}
