package core

// End-to-end tests for trace-ID propagation (caller → BatchEvaluator →
// coalesced flush → Matmat) and for the flight recorder's crash funnel: a
// panic during evaluation must leave a dump on disk naming the trace ID of
// the request that was in flight.

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/telemetry"
)

// findSpan returns the first recorded span event with the given name for
// which ok returns true, polling briefly: span events are published from the
// flusher goroutine, so the deferred flush-span end can trail the caller's
// result delivery by a scheduling quantum.
func findSpan(t *testing.T, flight *telemetry.FlightRecorder, name string, ok func(telemetry.SpanEvent) bool) telemetry.SpanEvent {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		for _, ev := range flight.RecentSpans(0) {
			if ev.Name == name && ok(ev) {
				return ev
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("span %q not recorded (have %v)", name, spanNames(flight))
		}
		time.Sleep(time.Millisecond)
	}
}

func spanNames(flight *telemetry.FlightRecorder) []string {
	var names []string
	for _, ev := range flight.RecentSpans(0) {
		names = append(names, ev.Name)
	}
	return names
}

func TestBatchTraceIDPropagation(t *testing.T) {
	rec := telemetry.New()
	flight := telemetry.NewFlightRecorder(rec, 256)
	h, _ := compressGauss(t, 192, Config{
		LeafSize: 32, MaxRank: 32, Tol: 1e-5, Kappa: 8, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 1,
		CacheBlocks: true, Telemetry: rec,
	})
	ev := h.NewBatchEvaluator(BatchOptions{MaxBatch: 8, MaxDelay: time.Millisecond})
	defer ev.Close()

	callerID := telemetry.NewTraceID()
	ctx := telemetry.ContextWithTraceID(context.Background(), callerID)
	rng := rand.New(rand.NewSource(11))
	if _, err := ev.Matvec(ctx, linalg.GaussianMatrix(rng, 192, 1)); err != nil {
		t.Fatal(err)
	}

	// The coalesced request's span carries the caller's trace ID, is a child
	// of the flush span, and names the flush trace it was served by.
	reqSpan := findSpan(t, flight, "batch.request", func(ev telemetry.SpanEvent) bool {
		return ev.TraceID == callerID
	})
	if reqSpan.Parent != "batch.flush" {
		t.Fatalf("batch.request parent = %q", reqSpan.Parent)
	}
	flushID := reqSpan.Attrs["flush_trace_id"]
	if flushID == "" || flushID == callerID {
		t.Fatalf("flush_trace_id = %q (caller %q)", flushID, callerID)
	}
	// The flush span owns that flush trace ID...
	findSpan(t, flight, "batch.flush", func(ev telemetry.SpanEvent) bool {
		return ev.TraceID == flushID
	})
	// ...and the Matmat it issued ran under the same trace.
	findSpan(t, flight, "matmat", func(ev telemetry.SpanEvent) bool {
		return ev.TraceID == flushID
	})

	// Direct (uncoalesced) evaluation: MatvecCtx stamps the root span with
	// the caller's trace ID and records the latency histogram.
	directID := telemetry.NewTraceID()
	if _, err := h.MatvecCtx(telemetry.ContextWithTraceID(context.Background(), directID),
		linalg.GaussianMatrix(rng, 192, 2)); err != nil {
		t.Fatal(err)
	}
	findSpan(t, flight, "matvec", func(ev telemetry.SpanEvent) bool {
		return ev.TraceID == directID
	})
	snap := rec.Snapshot()
	if snap.Histograms["matvec.latency_ms"].Count == 0 {
		t.Fatal("matvec.latency_ms histogram empty")
	}
	if snap.Counters["batch.flushes"] == 0 {
		t.Fatal("batch.flushes counter empty")
	}
}

func TestChaosPanicFlightDump(t *testing.T) {
	rec := telemetry.New()
	flight := telemetry.NewFlightRecorder(rec, 128)
	dir := t.TempDir()
	flight.SetDumpDir(dir)

	rng := rand.New(rand.NewSource(99))
	K, X := gaussKernelMatrix(rng, 128, 0.8)
	oracle := &panicSPD{SPD: denseSPD{K}}
	h, err := Compress(oracle, Config{
		LeafSize: 32, MaxRank: 32, Tol: 1e-5, Kappa: 8, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 1, Points: X,
		CacheBlocks: false, // evaluation consults the (armed) oracle
		Telemetry:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	crashID := telemetry.NewTraceID()
	ctx := telemetry.ContextWithTraceID(context.Background(), crashID)
	oracle.armed.Store(true)
	_, err = h.MatvecCtx(ctx, linalg.GaussianMatrix(rng, 128, 1))
	oracle.armed.Store(false)
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *resilience.PanicError, got %v", err)
	}

	// The crash funnel must have auto-dumped a post-mortem naming the trace.
	matches, globErr := filepath.Glob(filepath.Join(dir, "flight-*.matvec.json"))
	if globErr != nil || len(matches) == 0 {
		t.Fatalf("no flight dump written (err %v)", globErr)
	}
	raw, readErr := os.ReadFile(matches[0])
	if readErr != nil {
		t.Fatal(readErr)
	}
	if !strings.Contains(string(raw), crashID) {
		t.Fatalf("flight dump does not contain the panicking trace ID %s", crashID)
	}
	var d telemetry.FlightDump
	if jsonErr := json.Unmarshal(raw, &d); jsonErr != nil {
		t.Fatalf("dump not valid JSON: %v", jsonErr)
	}
	if d.Schema != telemetry.FlightDumpSchema {
		t.Fatalf("schema = %q", d.Schema)
	}
	crashRecorded := false
	for _, fe := range d.Errors {
		if fe.Label == "matvec" && fe.TraceID == crashID {
			crashRecorded = true
		}
	}
	if !crashRecorded {
		t.Fatalf("dump errors missing the crash: %+v", d.Errors)
	}
	// The panicking matvec's own span made it into the ring before the dump.
	spanSeen := false
	for _, ev := range d.Spans {
		if ev.Name == "matvec" && ev.TraceID == crashID {
			spanSeen = true
		}
	}
	if !spanSeen {
		t.Fatal("dump spans missing the panicking matvec span")
	}

	// Recovery: disarmed, the same operator evaluates cleanly.
	if _, err := h.MatvecCtx(context.Background(), linalg.GaussianMatrix(rng, 128, 1)); err != nil {
		t.Fatalf("operator did not recover after panic: %v", err)
	}
}

func TestChaosStallFlightDump(t *testing.T) {
	// A batch whose flush panics must funnel through ReportCrash with the
	// flush's own trace ID (the caller's request may not carry one).
	rec := telemetry.New()
	flight := telemetry.NewFlightRecorder(rec, 64)
	dir := t.TempDir()
	flight.SetDumpDir(dir)

	rng := rand.New(rand.NewSource(42))
	K, X := gaussKernelMatrix(rng, 128, 0.8)
	oracle := &panicSPD{SPD: denseSPD{K}}
	h, err := Compress(oracle, Config{
		LeafSize: 32, MaxRank: 32, Tol: 1e-5, Kappa: 8, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 1, Points: X,
		CacheBlocks: false, Telemetry: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := h.NewBatchEvaluator(BatchOptions{MaxBatch: 4, MaxDelay: time.Millisecond})
	defer ev.Close()

	oracle.armed.Store(true)
	_, err = ev.Matvec(context.Background(), linalg.GaussianMatrix(rng, 128, 1))
	oracle.armed.Store(false)
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *resilience.PanicError, got %v", err)
	}
	errs := flight.Errors()
	if len(errs) == 0 {
		t.Fatal("no crash recorded in the flight ring")
	}
	found := false
	for _, fe := range errs {
		if fe.Label == "matmat" && fe.TraceID != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no matmat crash with a flush trace ID: %+v", errs)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if len(matches) == 0 {
		t.Fatal("no auto-dump written for the batched crash")
	}
}
