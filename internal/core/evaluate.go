package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync/atomic"
	"time"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/sched"
	"gofmm/internal/telemetry"
	"gofmm/internal/tree"
	"gofmm/internal/workspace"
)

// evalState holds the per-Matvec buffers of Algorithm 2.7.
type evalState struct {
	r int
	// Wt and the two outputs are in tree order (rows = tree positions).
	Wt, Unear, Ufar *linalg.Matrix
	// skelW[α] = w̃α (skeleton weights, rank×r), written by N2S.
	skelW []*linalg.Matrix
	// skelU[α] = ũα (skeleton potentials), written by S2S, read by S2N.
	skelU []*linalg.Matrix
	// down[α] = P_α̃[l̃r̃]ᵀ · ũα, the contribution node α hands its children
	// during S2N (nil for leaves and skeleton-less nodes).
	down []*linalg.Matrix
	// pool, when non-nil, is where every buffer above came from and where
	// release() returns them. Kernels must route transient matrices through
	// getMat so pooled and unpooled evaluations stay byte-identical.
	pool *workspace.Pool
}

// getMat returns a zeroed rows×cols scratch matrix, pooled when possible.
func (st *evalState) getMat(rows, cols int) *linalg.Matrix {
	return st.pool.GetMatrix(rows, cols) // nil pool falls back to NewMatrix
}

// release returns every buffer to the pool. Safe to call with nil pool
// (no-op) and with nil entries; the state must not be used afterwards.
func (st *evalState) release() {
	if st.pool == nil {
		return
	}
	st.pool.PutMatrix(st.Wt)
	st.pool.PutMatrix(st.Unear)
	st.pool.PutMatrix(st.Ufar)
	for _, m := range st.skelW {
		st.pool.PutMatrix(m)
	}
	for _, m := range st.skelU {
		st.pool.PutMatrix(m)
	}
	for _, m := range st.down {
		st.pool.PutMatrix(m)
	}
}

// Matvec computes U ≈ K·W for an N×r block of right-hand sides using the
// compressed representation (Algorithm 2.7: N2S, S2S, S2N, L2L) under the
// configured executor. GOFMM's support for multiple right-hand sides is what
// makes it useful for block Krylov and Monte Carlo sampling workloads.
// Matvec is the legacy uncancellable entry point; it panics on the errors
// MatvecCtx would return.
func (h *Hierarchical) Matvec(W *linalg.Matrix) *linalg.Matrix {
	U, err := h.MatvecCtx(context.Background(), W)
	if err != nil {
		panic(err)
	}
	return U
}

// MatvecCtx is Matvec with cancellation and typed errors: invalid weights
// return ErrInvalidInput, the context is honoured between (and for the task
// executors, within) the four phases, and a panic in any task body surfaces
// as a *resilience.PanicError instead of escaping.
func (h *Hierarchical) MatvecCtx(ctx context.Context, W *linalg.Matrix) (*linalg.Matrix, error) {
	if p := h.evalPlan.Load(); p != nil {
		return h.replayBlock(ctx, p, W, "matvec")
	}
	return h.evalBlock(ctx, W, "matvec")
}

// InterpMatvecCtx is MatvecCtx pinned to the tree interpreter: it bypasses
// any installed compiled plan and re-walks the four passes. It is the
// reference path — the oracle the plan equivalence suite compares against —
// and is also useful for A/B benchmarks (see `repro pr8`).
func (h *Hierarchical) InterpMatvecCtx(ctx context.Context, W *linalg.Matrix) (*linalg.Matrix, error) {
	return h.evalBlock(ctx, W, "matvec")
}

// noteEval records the cost of the evaluation that just finished into
// Stats. EvalTime/EvalFlops describe "the last" evaluation, so concurrent
// requests legitimately overwrite each other — but the writes themselves
// must be serialized, since one Hierarchical serves many in-flight replays.
func (h *Hierarchical) noteEval(seconds, flops float64) {
	h.statsMu.Lock()
	h.Stats.EvalTime = seconds
	h.Stats.EvalFlops = flops
	h.statsMu.Unlock()
}

// LastEval returns the wall time and flop count of the most recent
// evaluation, consistent as a pair. Readers outside this package must use
// it instead of Stats.EvalTime/EvalFlops: those fields are rewritten by
// every concurrent replay, so direct reads race with noteEval.
func (h *Hierarchical) LastEval() (seconds, flops float64) {
	h.statsMu.Lock()
	defer h.statsMu.Unlock()
	return h.Stats.EvalTime, h.Stats.EvalFlops
}

// evalBlock is the shared four-pass block evaluation behind MatvecCtx and
// MatmatCtx: one symbolic traversal and one workspace scope serve the whole
// n×r block, so the per-pass kernels are r-wide GEMMs. op names the
// telemetry span and counters ("matvec" or "matmat").
func (h *Hierarchical) evalBlock(ctx context.Context, W *linalg.Matrix, op string) (U *linalg.Matrix, err error) {
	rec := h.Cfg.Telemetry
	tid, _ := telemetry.TraceIDFrom(ctx)
	// Backstop: no panic escapes the public entry points. The crash is
	// funneled to the flight recorder before the typed error returns.
	defer func() {
		if r := recover(); r != nil {
			perr := &resilience.PanicError{Label: op, Value: r, Stack: debug.Stack()}
			rec.ReportCrash(op, tid, perr)
			U, err = nil, perr
		}
	}()
	n := h.K.Dim()
	if W == nil {
		return nil, fmt.Errorf("%w: core: %s weights are nil", resilience.ErrInvalidInput, op)
	}
	if W.Rows != n {
		return nil, fmt.Errorf("%w: core: %s with %d rows, matrix dim %d",
			resilience.ErrInvalidInput, op, W.Rows, n)
	}
	if err := h.requireEvalOracle(op); err != nil {
		return nil, err
	}
	if err := resilience.FromContext(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	root := rec.StartSpan(op)
	// Idempotent safety net: if a kernel panics mid-pass the span still ends
	// (and reaches the flight recorder) before the backstop above reports.
	defer root.End()
	root.SetAttr(telemetry.AttrTraceID, tid)
	atomic.StoreInt64(&h.evalFlops, 0)
	t := h.Tree
	pool := h.Cfg.Workspace
	st := &evalState{
		r:     W.Cols,
		Wt:    pool.GetMatrix(n, W.Cols),
		Unear: pool.GetMatrix(n, W.Cols),
		Ufar:  pool.GetMatrix(n, W.Cols),
		skelW: make([]*linalg.Matrix, len(t.Nodes)),
		skelU: make([]*linalg.Matrix, len(t.Nodes)),
		down:  make([]*linalg.Matrix, len(t.Nodes)),
		pool:  pool,
	}
	// Release everything back to the pool on every exit path; the returned U
	// below is always freshly allocated, never pooled.
	defer st.release()
	W.RowsGatherInto(t.Perm, st.Wt)
	switch h.Cfg.Exec {
	case Sequential:
		sp := root.StartSpan("N2S")
		t.PostOrder(func(nd *tree.Node) { h.n2s(st, nd.ID) })
		sp.End()
		if err = resilience.FromContext(ctx); err != nil {
			break
		}
		sp = root.StartSpan("S2S")
		for id := range t.Nodes {
			h.s2s(st, id)
		}
		sp.End()
		if err = resilience.FromContext(ctx); err != nil {
			break
		}
		sp = root.StartSpan("S2N")
		t.PreOrder(func(nd *tree.Node) { h.s2n(st, nd.ID) })
		sp.End()
		if err = resilience.FromContext(ctx); err != nil {
			break
		}
		sp = root.StartSpan("L2L")
		for _, beta := range t.Leaves() {
			h.l2l(st, beta)
		}
		sp.End()
	case LevelByLevel:
		err = h.evalLevelByLevel(ctx, st, root)
	case Dynamic, TaskDepend:
		err = h.evalTasked(ctx, st, root)
	}
	if err != nil {
		root.SetAttr("error", err.Error())
		root.End()
		// Stalls and in-task panics are flight-recorder events: they are the
		// post-mortems the ring exists for. Plain cancellations are not.
		var perr *resilience.PanicError
		if errors.As(err, &perr) || errors.Is(err, resilience.ErrStalled) {
			rec.ReportCrash(op, tid, err)
		}
		return nil, err
	}
	st.Ufar.AddScaled(1, st.Unear)
	U = st.Ufar.RowsGather(t.IPerm)
	secs := time.Since(start).Seconds()
	if d := root.End(); d > 0 {
		secs = d.Seconds()
	}
	h.noteEval(secs, float64(atomic.LoadInt64(&h.evalFlops)))
	if rec != nil {
		rec.Counter(op + ".calls").Add(1)
		rec.Counter(op + ".flops").Add(atomic.LoadInt64(&h.evalFlops))
		rec.Gauge(op + ".rhs").Set(float64(W.Cols))
		rec.Histogram(op + ".latency_ms").Observe(time.Since(start).Seconds() * 1e3)
	}
	return U, nil
}

// n2s computes the skeleton weights w̃α = P_α̃α w_α (leaf) or
// P_α̃[l̃r̃] [w̃l; w̃r] (interior).
func (h *Hierarchical) n2s(st *evalState, id int) {
	nd := &h.nodes[id]
	if nd.proj == nil {
		return // root or skeleton-less node
	}
	t := h.Tree
	s := nd.proj.Rows
	out := st.getMat(s, st.r)
	if t.IsLeaf(id) {
		tn := &t.Nodes[id]
		wview := st.Wt.View(tn.Lo, 0, tn.Size(), st.r)
		linalg.Gemm(false, false, 1, nd.proj, wview, 0, out)
		h.addEvalFlops(2 * float64(s) * float64(tn.Size()) * float64(st.r))
	} else {
		wl := st.skelW[t.Left(id)]
		wr := st.skelW[t.Right(id)]
		stacked := st.stackRows(wl, wr)
		linalg.Gemm(false, false, 1, nd.proj, stacked, 0, out)
		h.addEvalFlops(2 * float64(s) * float64(stacked.Rows) * float64(st.r))
		if st.pool != nil {
			st.pool.PutMatrix(stacked) // transient: safe to recycle immediately
		}
	}
	st.skelW[id] = out
}

// s2s applies the skeleton basis: ũβ = Σ_{α ∈ Far(β)} K_β̃α̃ w̃α.
func (h *Hierarchical) s2s(st *evalState, id int) {
	nd := &h.nodes[id]
	if len(nd.far) == 0 || len(nd.skel) == 0 {
		return
	}
	acc := st.getMat(len(nd.skel), st.r)
	for k, alpha := range nd.far {
		wa := st.skelW[alpha]
		if wa == nil || wa.Rows == 0 {
			continue
		}
		if nd.cacheFar32 != nil {
			b := nd.cacheFar32[k]
			linalg.GemmMixed(1, b, wa, 1, acc)
			h.addEvalFlops(2 * float64(b.Rows) * float64(b.Cols) * float64(st.r))
			continue
		}
		var block *linalg.Matrix
		if nd.cacheFar != nil {
			block = nd.cacheFar[k]
		} else {
			block = NewGathered(h.K, nd.skel, h.nodes[alpha].skel)
		}
		linalg.Gemm(false, false, 1, block, wa, 1, acc)
		h.addEvalFlops(2 * float64(block.Rows) * float64(block.Cols) * float64(st.r))
	}
	st.skelU[id] = acc
}

// s2n pushes skeleton potentials down: ũβ += slice of parent's Pᵀũ, then
// either hands its own Pᵀũβ to its children (interior) or accumulates
// P_β̃βᵀ ũβ into the output rows (leaf).
func (h *Hierarchical) s2n(st *evalState, id int) {
	t := h.Tree
	nd := &h.nodes[id]
	// Fold in the parent's contribution.
	if p := t.Parent(id); p >= 0 && st.down[p] != nil {
		ls := len(h.nodes[t.Left(p)].skel)
		var part *linalg.Matrix
		if id == t.Left(p) {
			part = st.down[p].View(0, 0, ls, st.r)
		} else {
			part = st.down[p].View(ls, 0, st.down[p].Rows-ls, st.r)
		}
		if part.Rows > 0 {
			if st.skelU[id] == nil {
				st.skelU[id] = st.getMat(part.Rows, st.r)
			}
			st.skelU[id].AddScaled(1, part)
		}
	}
	u := st.skelU[id]
	if u == nil || u.Rows == 0 || nd.proj == nil {
		return
	}
	if t.IsLeaf(id) {
		tn := &t.Nodes[id]
		uview := st.Ufar.View(tn.Lo, 0, tn.Size(), st.r)
		linalg.Gemm(true, false, 1, nd.proj, u, 1, uview)
		h.addEvalFlops(2 * float64(nd.proj.Rows) * float64(tn.Size()) * float64(st.r))
	} else {
		down := st.getMat(nd.proj.Cols, st.r)
		linalg.Gemm(true, false, 1, nd.proj, u, 0, down)
		st.down[id] = down
		h.addEvalFlops(2 * float64(nd.proj.Rows) * float64(nd.proj.Cols) * float64(st.r))
	}
}

// l2l accumulates the direct (sparse-correction) interactions:
// u_β += Σ_{α ∈ Near(β)} K_βα w_α.
func (h *Hierarchical) l2l(st *evalState, beta int) {
	t := h.Tree
	nd := &h.nodes[beta]
	tb := &t.Nodes[beta]
	uview := st.Unear.View(tb.Lo, 0, tb.Size(), st.r)
	for k, alpha := range nd.near {
		ta := &t.Nodes[alpha]
		wview := st.Wt.View(ta.Lo, 0, ta.Size(), st.r)
		if nd.cacheNear32 != nil {
			b := nd.cacheNear32[k]
			linalg.GemmMixed(1, b, wview, 1, uview)
			h.addEvalFlops(2 * float64(b.Rows) * float64(b.Cols) * float64(st.r))
			continue
		}
		var block *linalg.Matrix
		if nd.cacheNear != nil {
			block = nd.cacheNear[k]
		} else {
			block = NewGathered(h.K, t.Indices(beta), t.Indices(alpha))
		}
		linalg.Gemm(false, false, 1, block, wview, 1, uview)
		h.addEvalFlops(2 * float64(block.Rows) * float64(block.Cols) * float64(st.r))
	}
}

// stackRows returns [a; b] (either may be nil/empty) as a pooled scratch
// matrix; the caller returns it to the pool when done.
func (st *evalState) stackRows(a, b *linalg.Matrix) *linalg.Matrix {
	ra, rb := 0, 0
	if a != nil {
		ra = a.Rows
	}
	if b != nil {
		rb = b.Rows
	}
	out := st.getMat(ra+rb, st.r)
	if ra > 0 {
		out.View(0, 0, ra, st.r).CopyFrom(a)
	}
	if rb > 0 {
		out.View(ra, 0, rb, st.r).CopyFrom(b)
	}
	return out
}

// evalLevelByLevel runs Algorithm 2.7 with a barrier per tree level:
// N2S bottom-up, S2S as one dynamic batch, S2N top-down, then L2L as one
// batch (the baseline traversal of Figure 4).
// sp is the enclosing "matvec" span (nil when telemetry is off); each of the
// four passes gets a child span. Splitting the RunLevels call per pass keeps
// the same semantics — RunLevels already barriers after every batch.
func (h *Hierarchical) evalLevelByLevel(ctx context.Context, st *evalState, sp *telemetry.Span) error {
	t := h.Tree
	p := h.Cfg.workerCount()
	levels := t.LevelNodes()
	var n2sBatches [][]func()
	for l := t.Depth; l >= 0; l-- {
		batch := make([]func(), 0, len(levels[l]))
		for _, id := range levels[l] {
			id := id
			batch = append(batch, func() { h.n2s(st, id) })
		}
		n2sBatches = append(n2sBatches, batch)
	}
	ps := sp.StartSpan("N2S")
	err := sched.RunLevelsCtx(ctx, n2sBatches, p)
	ps.End()
	if err != nil {
		return err
	}
	s2sBatch := make([]func(), 0, len(t.Nodes))
	for id := range t.Nodes {
		id := id
		s2sBatch = append(s2sBatch, func() { h.s2s(st, id) })
	}
	ps = sp.StartSpan("S2S")
	err = sched.RunLevelsCtx(ctx, [][]func(){s2sBatch}, p)
	ps.End()
	if err != nil {
		return err
	}
	var s2nBatches [][]func()
	for l := 0; l <= t.Depth; l++ {
		batch := make([]func(), 0, len(levels[l]))
		for _, id := range levels[l] {
			id := id
			batch = append(batch, func() { h.s2n(st, id) })
		}
		s2nBatches = append(s2nBatches, batch)
	}
	ps = sp.StartSpan("S2N")
	err = sched.RunLevelsCtx(ctx, s2nBatches, p)
	ps.End()
	if err != nil {
		return err
	}
	l2lBatch := make([]func(), 0, t.NumLeaves())
	for _, beta := range t.Leaves() {
		beta := beta
		l2lBatch = append(l2lBatch, func() { h.l2l(st, beta) })
	}
	ps = sp.StartSpan("L2L")
	err = sched.RunLevelsCtx(ctx, [][]func(){l2lBatch}, p)
	ps.End()
	return err
}

// evalTasked builds the Figure 3 dependency DAG by symbolic traversal and
// executes it out of order (HEFT for Dynamic, FIFO for TaskDepend). The RAW
// edges are exactly those of §2.3:
//
//	N2S(α)  ← N2S(l), N2S(r)            (w̃ of the children)
//	S2S(β)  ← N2S(α) for α ∈ Far(β)     (reads w̃α — unknown at compile time)
//	S2N(β)  ← S2S(β), S2N(parent(β))    (reads ũβ and the parent hand-down)
//	L2L(β)  independent                  (separate output accumulator)
func (h *Hierarchical) evalTasked(ctx context.Context, st *evalState, sp *telemetry.Span) error {
	g := h.buildEvalGraph(st)
	if err := g.Err(); err != nil {
		return err
	}
	policy := sched.HEFT
	if h.Cfg.Exec == TaskDepend {
		policy = sched.FIFO
	}
	eng := h.Cfg.engine(policy)
	rec := h.Cfg.Telemetry
	if h.Cfg.CaptureTrace || rec != nil {
		eng.EnableTrace()
	}
	if c := h.Cfg.Chaos; c != nil && c.Config().TaskFail > 0 {
		eng.SetFaultInjector(c.TaskFail)
	}
	if h.Cfg.StallTimeout > 0 {
		eng.SetStallTimeout(h.Cfg.StallTimeout)
	}
	runStart := rec.Since()
	err := eng.RunCtx(ctx, g)
	if n := eng.Retries(); n > 0 && rec != nil {
		rec.Counter("sched.task_retries").Add(n)
	}
	if h.Cfg.CaptureTrace || rec != nil {
		h.LastTrace = eng.Trace()
	}
	exportEngineTrace(rec, sp, "sched.matvec", eng, runStart)
	return err
}

// buildEvalGraph performs the symbolic traversal that discovers the RAW
// dependencies of Algorithm 2.7 and returns the task DAG. Task costs are
// predicted wall-clock, not raw flops: sched.BatchedCost discounts fat-RHS
// blocks by the GEMM efficiency they actually reach, so HEFT ranks a
// coalesced r-wide task correctly against r single-vector ones.
func (h *Hierarchical) buildEvalGraph(st *evalState) *sched.Graph {
	t := h.Tree
	g := sched.NewGraph()
	r := float64(st.r)
	m := float64(h.Cfg.LeafSize)
	cost := func(flops float64) float64 { return sched.BatchedCost(flops, st.r) }
	n2sTasks := make([]*sched.Task, len(t.Nodes))
	s2nTasks := make([]*sched.Task, len(t.Nodes))
	for id := len(t.Nodes) - 1; id >= 0; id-- {
		id := id
		s := float64(len(h.nodes[id].skel))
		n2sTasks[id] = g.Add(fmt.Sprintf("N2S(%d)", id), cost(2*m*s*r), func(*sched.Ctx) { h.n2s(st, id) })
		if !t.IsLeaf(id) {
			g.AddDep(n2sTasks[t.Left(id)], n2sTasks[id])
			g.AddDep(n2sTasks[t.Right(id)], n2sTasks[id])
		}
	}
	s2sTasks := make([]*sched.Task, len(t.Nodes))
	for id := range t.Nodes {
		id := id
		nd := &h.nodes[id]
		s := float64(len(nd.skel))
		s2sTasks[id] = g.Add(fmt.Sprintf("S2S(%d)", id), cost(2*s*s*r*float64(len(nd.far)+1)), func(*sched.Ctx) { h.s2s(st, id) })
		for _, alpha := range nd.far {
			g.AddDep(n2sTasks[alpha], s2sTasks[id])
		}
	}
	for id := 0; id < len(t.Nodes); id++ {
		id := id
		s := float64(len(h.nodes[id].skel))
		s2nTasks[id] = g.Add(fmt.Sprintf("S2N(%d)", id), cost(2*m*s*r), func(*sched.Ctx) { h.s2n(st, id) })
		g.AddDep(s2sTasks[id], s2nTasks[id])
		if p := t.Parent(id); p >= 0 {
			g.AddDep(s2nTasks[p], s2nTasks[id])
		}
	}
	// L2L tasks are the GEMM-heavy ones; when the pool has accelerator
	// workers, pin them there (§2.3: "we enforce our scheduler to schedule
	// L2L tasks to the GPU").
	var accel []int
	for wIdx, spec := range h.Cfg.WorkerSpecs {
		if spec.Accelerator {
			accel = append(accel, wIdx)
		}
	}
	for li, beta := range t.Leaves() {
		beta := beta
		nd := &h.nodes[beta]
		task := g.Add(fmt.Sprintf("L2L(%d)", beta), cost(2*m*m*r*float64(len(nd.near))), func(*sched.Ctx) { h.l2l(st, beta) })
		if len(accel) > 0 {
			task.Affinity = accel[li%len(accel)]
		}
	}
	return g
}

// EvalGraphDOT writes the evaluation-phase dependency DAG (Figure 3 of the
// paper, generated from the actual symbolic traversal) in Graphviz DOT
// format, without executing anything.
func (h *Hierarchical) EvalGraphDOT(w io.Writer) error {
	st := &evalState{
		r:     1,
		Wt:    linalg.NewMatrix(h.K.Dim(), 1),
		Unear: linalg.NewMatrix(h.K.Dim(), 1),
		Ufar:  linalg.NewMatrix(h.K.Dim(), 1),
		skelW: make([]*linalg.Matrix, len(h.Tree.Nodes)),
		skelU: make([]*linalg.Matrix, len(h.Tree.Nodes)),
		down:  make([]*linalg.Matrix, len(h.Tree.Nodes)),
	}
	return h.buildEvalGraph(st).WriteDOT(w)
}
