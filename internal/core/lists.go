package core

import (
	"sort"

	"gofmm/internal/tree"
)

// buildNearLists runs LeafNear (Algorithm 2.3) with the budget ballot of
// Eq. (6) for every leaf, then optionally symmetrizes the near relation.
//
// For each leaf β the neighbors of all i ∈ β vote for the leaves that
// contain them; candidates are admitted in descending vote order until the
// budget cap |Near(β)| ≤ budget·(N/m) is reached. β itself is always near
// (the diagonal block is never approximated).
func (h *Hierarchical) buildNearLists() {
	t := h.Tree
	numLeaves := t.NumLeaves()
	// Eq. (6): |Near(β)| < budget·(N/m). At paper scale N/m is 128–512 so
	// the cap is several leaves; at laptop scale the product can truncate
	// to zero, which would silently turn every positive budget into HSS —
	// so any positive budget admits at least one voted leaf.
	cap := int(h.Cfg.Budget * float64(numLeaves))
	if h.Cfg.Budget > 0 && cap < 1 {
		cap = 1
	}
	nearSets := make([]map[int]bool, len(h.nodes))
	for _, beta := range t.Leaves() {
		set := map[int]bool{beta: true}
		if h.Neighbors != nil && cap > 0 {
			votes := map[int]int{}
			for _, i := range t.Indices(beta) {
				for _, j := range h.Neighbors.Of(i) {
					leaf := t.LeafOfIndex(int(j))
					if leaf != beta {
						votes[leaf]++
					}
				}
			}
			// Admit by descending votes (ties by node ID for determinism).
			cand := make([]int, 0, len(votes))
			for leaf := range votes {
				cand = append(cand, leaf)
			}
			sort.Slice(cand, func(a, b int) bool {
				if votes[cand[a]] != votes[cand[b]] {
					return votes[cand[a]] > votes[cand[b]]
				}
				return cand[a] < cand[b]
			})
			for _, leaf := range cand {
				if len(set)-1 >= cap {
					break
				}
				set[leaf] = true
			}
		}
		nearSets[beta] = set
	}
	// Enforce symmetry: if α ∈ Near(β) then β ∈ Near(α). This may exceed
	// the budget slightly, exactly as in the paper, which prioritizes a
	// symmetric K̃.
	if !h.Cfg.NoSymmetrize {
		for _, beta := range t.Leaves() {
			for alpha := range nearSets[beta] {
				nearSets[alpha][beta] = true
			}
		}
	}
	maxNear := 0
	for _, beta := range t.Leaves() {
		lst := make([]int, 0, len(nearSets[beta]))
		for a := range nearSets[beta] {
			lst = append(lst, a)
		}
		sort.Ints(lst)
		h.nodes[beta].near = lst
		if len(lst) > maxNear {
			maxNear = len(lst)
		}
	}
	h.Stats.MaxNear = maxNear
}

// buildFarLists constructs the far interaction lists. Two constructions are
// provided:
//
//   - The symmetric dual-tree descent (default): equal-level node pairs
//     (a, b) are admissible when no leaf pair (λ ∈ a, μ ∈ b) is near;
//     inadmissible interior pairs recurse into their four child pairs. This
//     produces exactly the nested H²/FMM block structure, and — because the
//     near relation was symmetrized — symmetric far lists, which is how
//     GOFMM guarantees a symmetric K̃.
//
//   - The per-leaf FindFar (Algorithm 2.4) followed by MergeFar
//     (Algorithm 2.5), used in the asymmetric (ASKIT-style, NoSymmetrize)
//     mode. It tiles each row block exactly but may express the (β,α) and
//     (α,β) blocks at different granularities.
//
// Both tile the complement of the near leaf pairs exactly once (verified by
// the coverage tests).
func (h *Hierarchical) buildFarLists() {
	if h.Cfg.NoSymmetrize {
		h.buildFarListsLeafwise()
	} else {
		h.buildFarListsSymmetric()
	}
	// Keep lists sorted for deterministic evaluation order.
	for id := range h.nodes {
		sort.Ints(h.nodes[id].far)
	}
}

// buildFarListsSymmetric performs the symmetric dual-tree descent.
func (h *Hierarchical) buildFarListsSymmetric() {
	t := h.Tree
	// nearLeavesOf[id]: sorted leaf ordinals near any leaf under node id.
	firstLeaf := (1 << t.Depth) - 1
	nearLeavesOf := make([][]int32, len(h.nodes))
	var fill func(id int) []int32
	fill = func(id int) []int32 {
		var s []int32
		if t.IsLeaf(id) {
			for _, a := range h.nodes[id].near {
				s = append(s, int32(a-firstLeaf))
			}
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		} else {
			s = mergeSorted(fill(t.Left(id)), fill(t.Right(id)))
		}
		nearLeavesOf[id] = s
		return s
	}
	fill(0)
	// leafRange[id] = [lo, hi) of leaf ordinals under node id.
	connected := func(a, b int) bool {
		lo, hi := leafRange(t, b)
		s := nearLeavesOf[a]
		// Any entry of s in [lo, hi)?
		k := sort.Search(len(s), func(i int) bool { return s[i] >= int32(lo) })
		return k < len(s) && s[k] < int32(hi)
	}
	var descend func(a, b int)
	descend = func(a, b int) {
		if !connected(a, b) {
			h.nodes[a].far = append(h.nodes[a].far, b)
			if a != b {
				h.nodes[b].far = append(h.nodes[b].far, a)
			}
			return
		}
		if t.IsLeaf(a) {
			return // near leaf pair: handled by L2L
		}
		la, ra := t.Left(a), t.Right(a)
		lb, rb := t.Left(b), t.Right(b)
		if a == b {
			descend(la, la)
			descend(la, rb)
			descend(ra, ra)
			return
		}
		descend(la, lb)
		descend(la, rb)
		descend(ra, lb)
		descend(ra, rb)
	}
	descend(0, 0)
}

// mergeSorted merges two sorted int32 slices, deduplicating.
func mergeSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v int32
		switch {
		case j >= len(b) || (i < len(a) && a[i] <= b[j]):
			v = a[i]
			i++
		default:
			v = b[j]
			j++
		}
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// leafRange returns the ordinals [lo, hi) of the leaves under node id.
func leafRange(t *tree.Tree, id int) (int, int) {
	nd := &t.Nodes[id]
	span := 1 << (t.Depth - nd.Level)
	lo := nd.Morton.Path() << (t.Depth - nd.Level)
	return int(lo), int(lo) + span
}

// buildFarListsLeafwise is the per-leaf FindFar + MergeFar construction of
// Algorithms 2.4–2.5, used in asymmetric mode.
func (h *Hierarchical) buildFarListsLeafwise() {
	t := h.Tree
	for _, beta := range t.Leaves() {
		near := h.nodes[beta].near
		mortons := make([]tree.Morton, len(near))
		for k, a := range near {
			mortons[k] = t.Nodes[a].Morton
		}
		h.findFar(beta, 0, mortons)
	}
	h.mergeFar(0)
}

// findFar visits α (recursively from the root): if α's subtree contains any
// leaf near β we must descend; otherwise the whole block K_βα is admissible
// and α joins Far(β).
func (h *Hierarchical) findFar(beta, alpha int, nearMortons []tree.Morton) {
	t := h.Tree
	am := t.Nodes[alpha].Morton
	intersects := false
	for _, m := range nearMortons {
		if am.IsAncestorOf(m) {
			intersects = true
			break
		}
	}
	if !intersects {
		h.nodes[beta].far = append(h.nodes[beta].far, alpha)
		return
	}
	if t.IsLeaf(alpha) {
		return // α ∈ Near(β): handled by the direct L2L evaluation
	}
	h.findFar(beta, t.Left(alpha), nearMortons)
	h.findFar(beta, t.Right(alpha), nearMortons)
}

// mergeFar moves entries common to both children one level up (postorder).
func (h *Hierarchical) mergeFar(alpha int) {
	t := h.Tree
	if t.IsLeaf(alpha) {
		return
	}
	l, r := t.Left(alpha), t.Right(alpha)
	h.mergeFar(l)
	h.mergeFar(r)
	inL := map[int]bool{}
	for _, a := range h.nodes[l].far {
		inL[a] = true
	}
	common := map[int]bool{}
	for _, a := range h.nodes[r].far {
		if inL[a] {
			common[a] = true
		}
	}
	if len(common) == 0 {
		return
	}
	filter := func(lst []int) []int {
		out := lst[:0]
		for _, a := range lst {
			if !common[a] {
				out = append(out, a)
			}
		}
		return out
	}
	h.nodes[l].far = filter(h.nodes[l].far)
	h.nodes[r].far = filter(h.nodes[r].far)
	merged := make([]int, 0, len(common))
	for a := range common {
		merged = append(merged, a)
	}
	sort.Ints(merged)
	h.nodes[alpha].far = append(h.nodes[alpha].far, merged...)
}
