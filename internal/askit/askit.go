// Package askit implements the ASKIT baseline of Table 4 (March, Xiao, Yu &
// Biros: "ASKIT: an efficient, parallel library for high-dimensional kernel
// summations"). ASKIT is the geometry-aware predecessor of GOFMM; per the
// paper (§4) it differs from GOFMM in exactly three ways, which this package
// configures on top of the shared treecode machinery in internal/core:
//
//   - it *requires* point coordinates (geometric ball-tree splits);
//   - the amount of direct evaluation is decided solely by the κ nearest
//     neighbors — there is no budget cap and the near lists are not
//     symmetrized, so K̃ is not symmetric;
//   - both compression and evaluation use level-by-level traversals (no
//     out-of-order task scheduling, no HEFT runtime).
package askit

import (
	"fmt"

	"gofmm/internal/core"
	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
)

// Config tunes the ASKIT run.
type Config struct {
	LeafSize int     // m
	MaxRank  int     // s
	Tol      float64 // τ
	Kappa    int     // κ — solely determines the direct evaluations
	Workers  int
	Seed     int64
}

// Treecode is the compressed ASKIT representation.
type Treecode struct {
	h *core.Hierarchical
}

// Compress builds the ASKIT approximation. Points (d×N) are mandatory.
func Compress(K core.SPD, points *linalg.Matrix, cfg Config) (*Treecode, error) {
	if points == nil {
		return nil, fmt.Errorf("%w: askit requires points (use GOFMM for the geometry-oblivious case)",
			resilience.ErrInvalidInput)
	}
	h, err := core.Compress(K, core.Config{
		LeafSize: cfg.LeafSize,
		MaxRank:  cfg.MaxRank,
		Tol:      cfg.Tol,
		Kappa:    cfg.Kappa,
		// κ decides the near lists: admit every leaf that received a vote
		// (budget 1 ⇒ the cap equals the leaf count, i.e. no cap).
		Budget:       1.0,
		Distance:     core.Geometric,
		Points:       points,
		NumWorkers:   cfg.Workers,
		Exec:         core.LevelByLevel,
		NoSymmetrize: true,
		CacheBlocks:  true,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Treecode{h: h}, nil
}

// Matvec evaluates K̃·W with level-by-level traversals.
func (t *Treecode) Matvec(W *linalg.Matrix) *linalg.Matrix { return t.h.Matvec(W) }

// Stats exposes the timing/accuracy counters.
func (t *Treecode) Stats() core.Stats { return t.h.Stats }

// SampleRelErr estimates ε₂ on sampled rows.
func (t *Treecode) SampleRelErr(W, U *linalg.Matrix, samples int, seed int64) float64 {
	return t.h.SampleRelErr(W, U, samples, seed)
}
