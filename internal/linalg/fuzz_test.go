package linalg

import (
	"math/rand"
	"testing"
)

// FuzzQRCPFactorization drives pivoted QR over random shapes/seeds and
// verifies Q·R = A·P and orthonormality.
func FuzzQRCPFactorization(f *testing.F) {
	f.Add(int64(1), 8, 5)
	f.Add(int64(2), 1, 1)
	f.Add(int64(3), 20, 30)
	f.Fuzz(func(t *testing.T, seed int64, m, n int) {
		m = 1 + absInt(m)%40
		n = 1 + absInt(n)%40
		rng := rand.New(rand.NewSource(seed))
		A := GaussianMatrix(rng, m, n)
		fac := QRColumnPivot(A, 0, 0)
		Q := fac.FormQ()
		R := fac.R()
		QR := MatMul(false, false, Q, R)
		AP := A.ColsGather(fac.Piv)
		if d := RelFrobDiff(QR, AP); d > 1e-10 {
			t.Fatalf("QR reconstruction error %g (m=%d n=%d)", d, m, n)
		}
		if fac.Rank > 0 {
			QtQ := MatMul(true, false, Q, Q)
			if d := RelFrobDiff(QtQ, Eye(fac.Rank)); d > 1e-10 {
				t.Fatalf("Q not orthonormal: %g", d)
			}
		}
	})
}

// FuzzLUSolve factors random square systems and verifies residuals.
func FuzzLUSolve(f *testing.F) {
	f.Add(int64(1), 5)
	f.Add(int64(9), 1)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		n = 1 + absInt(n)%30
		rng := rand.New(rand.NewSource(seed))
		A := GaussianMatrix(rng, n, n)
		lu, err := LUFactor(A)
		if err != nil {
			return // singular: fine for random fuzz input
		}
		x := GaussianMatrix(rng, n, 1)
		b := MatMul(false, false, A, x)
		lu.Solve(b)
		if d := RelFrobDiff(b, x); d > 1e-6 {
			t.Fatalf("LU solve error %g (n=%d)", d, n)
		}
	})
}

func absInt(x int) int {
	if x < 0 {
		if x == -x {
			return 0
		}
		return -x
	}
	return x
}
