package experiments

import (
	"io"
	"math/rand"

	"gofmm/internal/askit"
	"gofmm/internal/core"
	"gofmm/internal/linalg"
)

// Table4 reproduces Table 4 (#19–#26): ASKIT versus GOFMM with geometric
// distances on the 6-D kernel matrices K04 (compressible) and K06 (max-rank
// saturating), at two problem sizes and two tolerances. Both methods use
// κ (scaled to 8 for laptop-size leaf counts) and m=s; GOFMM runs with a 7% budget as in the paper, ASKIT's direct
// evaluations follow its κ neighbors. The preserved shape: comparable
// accuracy, with GOFMM's out-of-order compression ahead when the rank
// saturates (K06).
func Table4(w io.Writer, sizes []int, seed int64) []Result {
	header(w, "#", "case", "N", "tol", "code", "eps2", "compress(s)", "eval(s)")
	var out []Result
	id := 19
	for _, name := range []string{"K04", "K06"} {
		for _, n := range sizes {
			for _, tol := range []float64{1e-3, 1e-6} {
				p := GetProblem(name, n, seed)
				dim := p.K.Dim()
				rng := rand.New(rand.NewSource(seed))
				W := linalg.GaussianMatrix(rng, dim, 1) // ASKIT evaluates r=1
				rows := sampleRows(dim, 100, seed+2)
				exact := core.ExactRows(p.K, rows, W)
				eps := func(U *linalg.Matrix) float64 {
					approx := U.RowsGather(rows)
					approx.AddScaled(-1, exact)
					return approx.FrobeniusNorm() / exact.FrobeniusNorm()
				}

				tc, err := askit.Compress(p.K, p.Points, askit.Config{
					LeafSize: 128, MaxRank: 128, Tol: tol, Kappa: 8,
					Workers: 2, Seed: seed,
				})
				if err != nil {
					panic(err)
				}
				Ua := tc.Matvec(W)
				ra := Result{
					Experiment: "table4", Case: name, Scheme: "ASKIT", N: dim,
					Eps: eps(Ua), CompressS: tc.Stats().CompressTime, EvalS: tc.Stats().EvalTime,
				}
				out = append(out, ra)

				g, err := core.Compress(p.K, core.Config{
					LeafSize: 128, MaxRank: 128, Tol: tol, Kappa: 8,
					Budget: 0.07, Distance: core.Geometric, Points: p.Points,
					Exec: core.Dynamic, NumWorkers: 2, CacheBlocks: true, Seed: seed,
				})
				if err != nil {
					panic(err)
				}
				Ug := g.Matvec(W)
				gEvalS, _ := g.LastEval()
				rg := Result{
					Experiment: "table4", Case: name, Scheme: "GOFMM", N: dim,
					Eps: eps(Ug), CompressS: g.Stats.CompressTime, EvalS: gEvalS,
					AvgRank: g.Stats.AvgRank,
				}
				out = append(out, rg)

				for _, res := range []Result{ra, rg} {
					cell(w, "%d", id)
					cell(w, "%s", name)
					cell(w, "%d", dim)
					cell(w, "%.0e", tol)
					cell(w, "%s", res.Scheme)
					cell(w, "%.1e", res.Eps)
					cell(w, "%.3f", res.CompressS)
					cell(w, "%.4f", res.EvalS)
					endRow(w)
				}
				id++
			}
		}
	}
	return out
}
