package framework

import (
	"go/ast"
	"go/types"
	"strings"
)

// CalleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for calls through function-typed variables, conversions, and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsMethod reports whether call invokes a method named methodName whose
// receiver is (a pointer to) a named type recvType defined in a package
// named pkgName. Matching is by package *name*, not full path, so analyzer
// golden tests can exercise stub packages that mimic the real API.
func IsMethod(info *types.Info, call *ast.CallExpr, pkgName, recvType, methodName string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != methodName {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == recvType && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// IsPkgFunc reports whether call invokes a package-level function funcName
// from a package whose path is pkgPath (exact; used for stdlib packages).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, funcName string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != funcName {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// namedOf unwraps pointers and aliases down to the *types.Named, if any.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// ObjectOf resolves an expression that names a variable (a bare identifier,
// possibly parenthesized) to its object; nil otherwise.
func ObjectOf(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		return info.Defs[id]
	}
	return nil
}

// IsContextType reports whether t is the context.Context interface.
func IsContextType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// HasContextParam reports whether the function type's first parameter is a
// context.Context, returning the parameter variable when so.
func HasContextParam(sig *types.Signature) (*types.Var, bool) {
	if sig == nil || sig.Params().Len() == 0 {
		return nil, false
	}
	p := sig.Params().At(0)
	if IsContextType(p.Type()) {
		return p, true
	}
	return nil, false
}

// Chain flattens a pure ident/selector expression (`q.mu`, `s.reg.ops`) to
// its root object and dotted field path ("" for a bare identifier). ok is
// false for anything else — calls, index expressions, literals — which the
// flow-sensitive analyzers treat as "cannot tie this access to a lock or
// reference owner".
func Chain(info *types.Info, e ast.Expr) (root types.Object, path string, ok bool) {
	var names []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			names = append(names, x.Sel.Name)
			e = x.X
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if obj == nil {
				return nil, "", false
			}
			for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
				names[i], names[j] = names[j], names[i]
			}
			return obj, strings.Join(names, "."), true
		default:
			return nil, "", false
		}
	}
}
