// Package workspace provides a size-classed buffer pool so the hot
// evaluation paths (Matvec, HSS Factor/Solve, the distributed per-rank
// matvec) reuse their per-call scratch instead of reallocating it. Buffers
// are float64 slices handed out zeroed, filed into power-of-two size
// classes, and backed by sync.Pool per class so idle memory is still
// reclaimable by the GC. A nil *Pool is valid everywhere and degrades to
// plain allocation, which keeps pooling strictly opt-in.
package workspace

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"gofmm/internal/linalg"
	"gofmm/internal/telemetry"
)

const (
	minClassBits = 8  // smallest pooled buffer: 256 floats (2 KiB)
	maxClassBits = 27 // largest pooled buffer: 128 Mi floats (1 GiB)
	numClasses   = maxClassBits - minClassBits + 1
)

// Pool is a size-classed free list of float64 buffers. The zero value is
// ready to use; so is a nil pointer (every method no-ops or allocates).
type Pool struct {
	classes [numClasses]sync.Pool // each stores *[]float64 with cap = 1<<(minClassBits+i)

	hits       atomic.Int64
	misses     atomic.Int64
	returns    atomic.Int64
	bytesReuse atomic.Int64

	// Telemetry counters cached at attach time so the hot path is a single
	// atomic add with no name lookup. All are nil-safe.
	cHits    atomic.Pointer[telemetry.Counter]
	cMisses  atomic.Pointer[telemetry.Counter]
	cReturns atomic.Pointer[telemetry.Counter]
	cBytes   atomic.Pointer[telemetry.Counter]
}

// Stats is a snapshot of pool traffic. BytesReused counts the capacity of
// every buffer served from the free lists (the allocations avoided).
type Stats struct {
	Hits, Misses, Returns int64
	BytesReused           int64
}

// New returns an empty pool.
func New() *Pool { return &Pool{} }

// AttachTelemetry mirrors future pool traffic into rec's workspace.*
// counters (workspace.hits, workspace.misses, workspace.returns,
// workspace.bytes_reused). Counts accumulated before the call are carried
// over so snapshots always reflect pool lifetime totals.
func (p *Pool) AttachTelemetry(rec *telemetry.Recorder) {
	if p == nil || rec == nil {
		return
	}
	h := rec.Counter("workspace.hits")
	m := rec.Counter("workspace.misses")
	r := rec.Counter("workspace.returns")
	b := rec.Counter("workspace.bytes_reused")
	h.Add(p.hits.Load() - h.Value())
	m.Add(p.misses.Load() - m.Value())
	r.Add(p.returns.Load() - r.Value())
	b.Add(p.bytesReuse.Load() - b.Value())
	p.cHits.Store(h)
	p.cMisses.Store(m)
	p.cReturns.Store(r)
	p.cBytes.Store(b)
}

// class returns the index of the smallest class with capacity ≥ n, or -1 if
// n is outside the pooled range.
func class(n int) int {
	if n <= 0 {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b < minClassBits {
		b = minClassBits
	}
	if b > maxClassBits {
		return -1
	}
	return b - minClassBits
}

// Get returns a zeroed slice of length n. The buffer comes from the free
// list when one is available; either way the caller owns it until Put.
func (p *Pool) Get(n int) []float64 {
	if p == nil {
		return make([]float64, n)
	}
	ci := class(n)
	if ci < 0 {
		p.misses.Add(1)
		p.cMisses.Load().Add(1)
		return make([]float64, n)
	}
	if v := p.classes[ci].Get(); v != nil {
		buf := (*(v.(*[]float64)))[:n]
		for i := range buf {
			buf[i] = 0
		}
		p.hits.Add(1)
		p.bytesReuse.Add(int64(cap(buf)) * 8)
		p.cHits.Load().Add(1)
		p.cBytes.Load().Add(int64(cap(buf)) * 8)
		return buf
	}
	p.misses.Add(1)
	p.cMisses.Load().Add(1)
	return make([]float64, n, 1<<(minClassBits+ci))
}

// Put files buf back for reuse. Buffers of arbitrary capacity are accepted —
// they are filed under the largest class that fits inside cap(buf), so a
// later Get never receives a too-small buffer; capacities below the minimum
// class are dropped. The caller must not touch buf afterwards, and must
// never Put a slice that aliases memory it does not own (e.g. a matrix
// view's Data).
func (p *Pool) Put(buf []float64) {
	if p == nil || cap(buf) == 0 {
		return
	}
	b := bits.Len(uint(cap(buf))) - 1 // floor(log2 cap)
	if b < minClassBits {
		return
	}
	if b > maxClassBits {
		b = maxClassBits
	}
	full := buf[:1<<b]
	p.classes[b-minClassBits].Put(&full)
	p.returns.Add(1)
	p.cReturns.Load().Add(1)
}

// GetMatrix returns a zeroed r×c matrix whose backing array comes from the
// pool. Release it with PutMatrix — never PutMatrix a view of it.
func (p *Pool) GetMatrix(r, c int) *linalg.Matrix {
	if p == nil {
		return linalg.NewMatrix(r, c)
	}
	return linalg.FromColumnMajor(r, c, p.Get(r*c))
}

// PutMatrix returns a matrix obtained from GetMatrix to the pool. Matrices
// whose Data does not own its full backing buffer (views) must not be
// passed here; the matrix must not be used afterwards.
func (p *Pool) PutMatrix(M *linalg.Matrix) {
	if p == nil || M == nil {
		return
	}
	p.Put(M.Data)
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{
		Hits:        p.hits.Load(),
		Misses:      p.misses.Load(),
		Returns:     p.returns.Load(),
		BytesReused: p.bytesReuse.Load(),
	}
}

// Scope tracks a group of pooled matrices so a phase (an HSS factorization,
// one distributed matvec) can release everything it borrowed with a single
// Release call, including on error paths via defer.
type Scope struct {
	pool *Pool
	mats []*linalg.Matrix
}

// NewScope returns a scope drawing from p (p may be nil).
func (p *Pool) NewScope() *Scope { return &Scope{pool: p} }

// Matrix returns a zeroed r×c pooled matrix owned by the scope. The caller
// must not retain it past Release.
func (s *Scope) Matrix(r, c int) *linalg.Matrix {
	M := s.pool.GetMatrix(r, c)
	s.mats = append(s.mats, M)
	return M
}

// Keep removes M from the scope so Release will not reclaim it — used when
// a scratch matrix is promoted to a persistent result.
func (s *Scope) Keep(M *linalg.Matrix) {
	for i, v := range s.mats {
		if v == M {
			s.mats[i] = s.mats[len(s.mats)-1]
			s.mats = s.mats[:len(s.mats)-1]
			return
		}
	}
}

// Release returns every tracked matrix to the pool. The scope is reusable
// afterwards.
func (s *Scope) Release() {
	for _, M := range s.mats {
		s.pool.PutMatrix(M)
	}
	s.mats = s.mats[:0]
}
