// Fast direct solve through the public API: compress a dense SPD matrix
// geometry-obliviously in HSS mode (Budget 0), factor the compressed
// operator with the hierarchical direct solver (the paper's stated future
// work), and use it both as a direct solver and as a preconditioner that
// collapses CG on the exact matrix to a handful of iterations.
//
//	go run ./examples/fastsolve [-n 2048]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"gofmm"
	"gofmm/krylov"
	"gofmm/testmat"
)

func main() {
	n := flag.Int("n", 2048, "problem size")
	flag.Parse()
	log.SetFlags(0)

	// K02: a PDE-constrained-optimization Hessian. Its spectrum is spread
	// enough that unpreconditioned CG needs hundreds of iterations.
	p, err := testmat.Generate("K02", *n, 2)
	if err != nil {
		log.Fatal(err)
	}
	dim := p.K.Dim()
	fmt.Printf("problem: %s (N = %d)\n", p.Desc, dim)

	// Geometry-oblivious HSS compression (no coordinates used).
	t0 := time.Now()
	H, err := gofmm.Compress(p.K, gofmm.Config{
		LeafSize: 128, MaxRank: 128, Tol: 1e-10, Budget: 0,
		Distance: gofmm.Angle, Exec: gofmm.Dynamic, NumWorkers: 4,
		CacheBlocks: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed in %.3fs (avg rank %.1f, %.1f%% of dense storage)\n",
		time.Since(t0).Seconds(), H.Stats.AvgRank, 100*H.CompressionRatio())

	t0 = time.Now()
	F, err := gofmm.Factor(H)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hierarchical factorization: %.3fs\n", time.Since(t0).Seconds())

	// Direct solve K̃x = b, residual measured against the *exact* matrix.
	rng := rand.New(rand.NewSource(3))
	b := gofmm.NewMatrix(dim, 1)
	for i := 0; i < dim; i++ {
		b.Set(i, 0, rng.NormFloat64())
	}
	t0 = time.Now()
	x := F.Solve(b)
	solveTime := time.Since(t0).Seconds()
	r := gofmm.ExactMatvec(p.K, x)
	r.AddScaled(-1, b)
	fmt.Printf("direct solve: %.4fs, exact-matrix residual ‖Kx−b‖/‖b‖ = %.2e\n",
		solveTime, r.FrobeniusNorm()/b.FrobeniusNorm())

	// CG on the exact matrix, with and without the factorization as M⁻¹.
	exact := krylov.Dense{M: denseOf(p.K, dim)}
	_, plain, _ := krylov.CG(exact, nil, b.Col(0), 1e-8, 500)
	_, prec, _ := krylov.CG(exact, F, b.Col(0), 1e-8, 500)
	fmt.Printf("CG on exact K: %d iterations unpreconditioned vs %d with the hierarchical factorization\n",
		plain.Iterations, prec.Iterations)
}

// denseOf materializes the oracle for the exact-CG comparison.
func denseOf(K gofmm.SPD, n int) *gofmm.Matrix {
	M := gofmm.NewMatrix(n, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if b, ok := K.(gofmm.Bulk); ok {
		b.Submatrix(idx, idx, M)
		return M
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			M.Set(i, j, K.At(i, j))
		}
	}
	return M
}
