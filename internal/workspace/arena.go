package workspace

// Arena is one contiguous reservation drawn from a Pool — the
// plan-replay model of scratch: a compiled evaluation plan binds a single
// plan-sized arena per replay state instead of borrowing per-node scratch,
// and sub-buffers are fixed offset slices of it. The zero-allocation
// contract of replay rests on the reservation being one block: every
// operand header is a view into the same backing array, resolved once.
//
// An Arena is owned by its holder until Release; it is not safe for
// concurrent use (replay states are checked out by one evaluation at a
// time). A nil Pool degrades to plain allocation, like every other pool
// entry point.
type Arena struct {
	pool *Pool
	data []float64
}

// GetArena reserves a zeroed arena of n floats from the pool.
func (p *Pool) GetArena(n int) *Arena {
	return &Arena{pool: p, data: p.Get(n)}
}

// Len returns the reservation size in floats.
func (a *Arena) Len() int { return len(a.data) }

// Slice returns the [off, off+n) window of the arena with a clamped
// capacity, so downstream append/reslice bugs cannot silently bleed into a
// neighbouring region.
func (a *Arena) Slice(off, n int) []float64 {
	return a.data[off : off+n : off+n]
}

// Release files the reservation back into the pool. The arena (and every
// slice taken from it) must not be used afterwards; Release on an already
// released arena is a no-op.
func (a *Arena) Release() {
	if a == nil || a.data == nil {
		return
	}
	a.pool.Put(a.data)
	a.data = nil
}
